//! The two one-pass streaming matchers.

use crate::reservoir::EdgeReservoir;
use rand::Rng;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::stage_eps;
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::bounded_aug::approx_maximum_matching_from;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::Matching;
use sparsimatch_obs::{keys, WorkMeter};

/// Memory and stream accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Edges that arrived on the stream.
    pub edges_seen: u64,
    /// Distinct edges retained at end of stream (the memory footprint).
    pub edges_retained: usize,
}

impl StreamStats {
    /// Mirror into the unified [`WorkMeter`] accounting.
    pub fn mirror_into(&self, meter: &mut WorkMeter) {
        meter.add(keys::EDGES_SEEN, self.edges_seen);
        meter.add(keys::EDGES_RETAINED, self.edges_retained as u64);
    }
}

/// One-pass `(1+ε)`-style matcher: per-vertex reservoirs of Δ incident
/// edges (= the sparsifier's marking distribution), offline matching at
/// the end. Insertion-only streams.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_graph::ids::VertexId;
/// use sparsimatch_stream::StreamingSparsifierMatcher;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let params = SparsifierParams::practical(1, 0.5);
/// let mut sm = StreamingSparsifierMatcher::new(4, params);
/// for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
///     sm.push_edge(VertexId(u), VertexId(v), &mut rng);
/// }
/// let (matching, stats) = sm.finish();
/// assert_eq!(matching.len(), 2, "C4 has a perfect matching");
/// assert_eq!(stats.edges_seen, 4);
/// ```
pub struct StreamingSparsifierMatcher {
    reservoirs: Vec<EdgeReservoir>,
    params: SparsifierParams,
    edges_seen: u64,
}

impl StreamingSparsifierMatcher {
    /// A matcher over `n` vertices for streams whose graph has
    /// neighborhood independence ≤ `params.beta`.
    ///
    /// Reservoir capacity is the construction's low-degree threshold
    /// `mark_cap = 2Δ` so the streamed subgraph matches the Section 3.1
    /// variant of `G_Δ` (degree ≤ 2Δ ⇒ keep everything).
    pub fn new(n: usize, params: SparsifierParams) -> Self {
        let cap = params.mark_cap();
        StreamingSparsifierMatcher {
            reservoirs: (0..n).map(|_| EdgeReservoir::new(cap)).collect(),
            params,
            edges_seen: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.reservoirs.len()
    }

    /// Process one streamed edge.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, rng: &mut impl Rng) {
        assert!(u != v, "self loop on the stream");
        self.edges_seen += 1;
        self.reservoirs[u.index()].offer(v.0, rng);
        self.reservoirs[v.index()].offer(u.0, rng);
    }

    /// Current retained-edge upper bound (before deduplication).
    pub fn memory_edges(&self) -> usize {
        self.reservoirs.iter().map(|r| r.len()).sum()
    }

    /// Materialize the retained sparsifier.
    pub fn retained_graph(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut b = GraphBuilder::with_capacity(n, self.memory_edges());
        for (v, r) in self.reservoirs.iter().enumerate() {
            for &u in r.items() {
                b.add_edge(VertexId::new(v), VertexId(u));
            }
        }
        b.build()
    }

    /// End of stream: compute the `(1+ε)`-approximate matching offline on
    /// the retained sparsifier.
    pub fn finish(&self) -> (Matching, StreamStats) {
        let sparse = self.retained_graph();
        let stats = StreamStats {
            edges_seen: self.edges_seen,
            edges_retained: sparse.num_edges(),
        };
        let init = greedy_maximal_matching(&sparse);
        let (m, _) = approx_maximum_matching_from(&sparse, init, stage_eps(self.params.eps));
        (m, stats)
    }
}

/// The folklore one-pass streaming greedy: keep an edge iff both
/// endpoints are currently free. O(n) memory, maximal at end of stream
/// (for insertion-only streams), hence 2-approximate.
pub struct StreamingGreedyMatcher {
    matching: Matching,
    edges_seen: u64,
}

impl StreamingGreedyMatcher {
    /// A greedy matcher over `n` vertices.
    pub fn new(n: usize) -> Self {
        StreamingGreedyMatcher {
            matching: Matching::new(n),
            edges_seen: 0,
        }
    }

    /// Process one streamed edge.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges_seen += 1;
        self.matching.add_pair(u, v); // no-op when an endpoint is taken
    }

    /// End of stream.
    pub fn finish(self) -> (Matching, StreamStats) {
        let retained = self.matching.len();
        (
            self.matching,
            StreamStats {
                edges_seen: self.edges_seen,
                edges_retained: retained,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, clique_union, CliqueUnionConfig};
    use sparsimatch_matching::blossom::maximum_matching;

    fn stream_in_random_order(g: &CsrGraph, rng: &mut StdRng) -> Vec<(VertexId, VertexId)> {
        let mut edges: Vec<(VertexId, VertexId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        edges.shuffle(rng);
        edges
    }

    #[test]
    fn reservoir_matcher_approximates_on_clique_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = clique(200);
        let params = SparsifierParams::practical(1, 0.3);
        let mut sm = StreamingSparsifierMatcher::new(200, params);
        for (u, v) in stream_in_random_order(&g, &mut rng) {
            sm.push_edge(u, v, &mut rng);
        }
        let (m, stats) = sm.finish();
        assert!(
            m.is_valid_for(&g),
            "retained edges must come from the stream"
        );
        let exact = maximum_matching(&g).len();
        assert!(
            m.len() as f64 * 1.3 >= exact as f64,
            "{} vs {exact}",
            m.len()
        );
        assert_eq!(stats.edges_seen, g.num_edges() as u64);
        assert!(
            stats.edges_retained < g.num_edges() / 2,
            "memory {} not sublinear in stream {}",
            stats.edges_retained,
            g.num_edges()
        );
    }

    #[test]
    fn memory_bounded_by_n_times_cap() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 150,
                diversity: 2,
                clique_size: 50,
            },
            &mut rng,
        );
        let params = SparsifierParams::practical(2, 0.5);
        let mut sm = StreamingSparsifierMatcher::new(150, params);
        for (u, v) in stream_in_random_order(&g, &mut rng) {
            sm.push_edge(u, v, &mut rng);
            assert!(sm.memory_edges() <= 150 * params.mark_cap());
        }
    }

    #[test]
    fn greedy_stream_is_maximal() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 20,
            },
            &mut rng,
        );
        let mut gm = StreamingGreedyMatcher::new(100);
        for (u, v) in stream_in_random_order(&g, &mut rng) {
            gm.push_edge(u, v);
        }
        let (m, stats) = gm.finish();
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
        assert_eq!(stats.edges_seen, g.num_edges() as u64);
        let exact = maximum_matching(&g).len();
        assert!(2 * m.len() >= exact);
    }

    #[test]
    fn retained_graph_is_subgraph_of_stream() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = clique(60);
        let params = SparsifierParams::with_delta(1, 0.5, 3);
        let mut sm = StreamingSparsifierMatcher::new(60, params);
        for (u, v) in stream_in_random_order(&g, &mut rng) {
            sm.push_edge(u, v, &mut rng);
        }
        let retained = sm.retained_graph();
        for (_, u, v) in retained.edges() {
            assert!(g.has_edge(u, v));
        }
        // High-degree vertices hold exactly mark_cap reservoir slots.
        assert!(retained.num_edges() <= 60 * params.mark_cap());
    }

    #[test]
    fn stats_mirror_into_meter() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique(40);
        let params = SparsifierParams::practical(1, 0.5);
        let mut sm = StreamingSparsifierMatcher::new(40, params);
        for (_, u, v) in g.edges() {
            sm.push_edge(u, v, &mut rng);
        }
        let (_, stats) = sm.finish();
        let mut meter = WorkMeter::new();
        stats.mirror_into(&mut meter);
        assert_eq!(meter.get(keys::EDGES_SEEN), g.num_edges() as u64);
        assert_eq!(meter.get(keys::EDGES_RETAINED), stats.edges_retained as u64);
    }

    #[test]
    fn adversarial_stream_order_does_not_matter() {
        // Reservoirs are order-oblivious: sorted order must work as well
        // as random order.
        let mut rng = StdRng::seed_from_u64(5);
        let g = clique(120);
        let params = SparsifierParams::practical(1, 0.4);
        let mut sm = StreamingSparsifierMatcher::new(120, params);
        for (_, u, v) in g.edges() {
            sm.push_edge(u, v, &mut rng); // sorted lexicographic order
        }
        let (m, _) = sm.finish();
        let exact = maximum_matching(&g).len();
        assert!(m.len() as f64 * 1.4 >= exact as f64);
    }
}
