//! Classic reservoir sampling of a fixed-capacity uniform subset.

use rand::Rng;

/// A reservoir holding a uniform `capacity`-subset of the items offered
/// so far (Vitter's Algorithm R).
#[derive(Clone, Debug)]
pub struct EdgeReservoir {
    items: Vec<u32>,
    capacity: usize,
    seen: u64,
}

impl EdgeReservoir {
    /// An empty reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        EdgeReservoir {
            items: Vec::new(),
            capacity,
            seen: 0,
        }
    }

    /// Offer one item. Kept with probability `capacity / seen`, evicting
    /// a uniform victim — the invariant "items is a uniform
    /// capacity-subset of everything offered" is maintained.
    pub fn offer(&mut self, item: u32, rng: &mut impl Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        let j = rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// Items currently held.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Total items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current memory footprint in items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = EdgeReservoir::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..4 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3]);
        assert_eq!(r.seen(), 4);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut r = EdgeReservoir::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..1000 {
            r.offer(i, &mut rng);
            assert!(r.len() <= 3);
        }
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn uniform_marginals() {
        // Each of 20 items should survive with probability 4/20 = 0.2.
        let trials = 30_000;
        let mut counts = [0u32; 20];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..trials {
            let mut r = EdgeReservoir::new(4);
            for i in 0..20 {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                counts[i as usize] += 1;
            }
        }
        let expected = trials as f64 * 0.2;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                ((c as f64) - expected).abs() / expected < 0.06,
                "item {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn seeded_replay_is_deterministic() {
        let sample = |seed: u64| {
            let mut r = EdgeReservoir::new(6);
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..300 {
                r.offer(i, &mut rng);
            }
            r.items().to_vec()
        };
        assert_eq!(sample(11), sample(11), "same seed must replay exactly");
        // 294 of 300 offers are evicted, so two seeds agreeing on all six
        // survivors would be a (lack-of-)randomness bug, not luck.
        assert_ne!(sample(11), sample(12), "different seeds must diverge");
    }

    #[test]
    fn exactly_capacity_offers_keep_everything_in_order() {
        // The fill/evict boundary: at seen == capacity nothing has been
        // evicted yet, and the very next offer may evict.
        let mut r = EdgeReservoir::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..4 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3]);
        r.offer(4, &mut rng);
        assert_eq!(r.len(), 4);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn capacity_one_holds_a_single_uniform_item() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = 0u32;
        let trials = 4_000;
        for _ in 0..trials {
            let mut r = EdgeReservoir::new(1);
            for i in 0..10 {
                r.offer(i, &mut rng);
            }
            assert_eq!(r.len(), 1);
            if r.items()[0] == 7 {
                hits += 1;
            }
        }
        // Any fixed item survives with probability 1/10.
        let p = f64::from(hits) / f64::from(trials);
        assert!((p - 0.1).abs() < 0.02, "survival probability {p}");
    }

    #[test]
    fn chi_square_uniformity_smoke() {
        // Pearson chi-square over the 20 survival counters. With a seeded
        // generator this is a deterministic regression test, not a flaky
        // statistical one; the threshold is the p = 0.001 tail for 19
        // degrees of freedom, so only a real uniformity break trips it.
        let trials = 20_000u32;
        let mut counts = [0u32; 20];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..trials {
            let mut r = EdgeReservoir::new(4);
            for i in 0..20 {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                counts[i as usize] += 1;
            }
        }
        let expected = f64::from(trials) * 0.2;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 43.82, "chi-square statistic {chi2:.2} too extreme");
    }

    #[test]
    fn items_are_distinct_when_offers_are() {
        let mut r = EdgeReservoir::new(8);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..500 {
            r.offer(i, &mut rng);
        }
        let mut items = r.items().to_vec();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 8);
    }
}
