#![warn(missing_docs)]

//! Semi-streaming matching via the sparsifier (the "memory-constrained
//! models" application sketched at the top of the paper's Section 3).
//!
//! In the insertion-only semi-streaming model, edges arrive one at a time
//! and the algorithm may keep only `Õ(n)` words. Per-vertex **reservoir
//! sampling** maintains, for every vertex, a uniform Δ-subset of the
//! incident edges seen so far — which is exactly the marking distribution
//! of the random sparsifier `G_Δ` (vertices with degree ≤ Δ keep
//! everything automatically). At end of stream the union of reservoirs is
//! `G_Δ`-distributed, so by Theorem 2.1 it is a `(1+ε)`-matching
//! sparsifier of the streamed graph w.h.p. whenever the stream's graph
//! has neighborhood independence ≤ β, and a `(1+ε)`-approximate matching
//! is computed offline from `O(n·Δ)` retained edges.
//!
//! Two algorithms:
//! * [`StreamingSparsifierMatcher`] — the reservoir construction above:
//!   memory `O(n·Δ)` edges, approximation `(1+ε)²` (sparsifier × offline
//!   matcher), insertion-only;
//! * [`StreamingGreedyMatcher`] — the folklore one-pass greedy maximal
//!   matching: memory `O(n)`, approximation 2; the baseline.

pub mod matcher;
pub mod reservoir;

pub use matcher::{StreamStats, StreamingGreedyMatcher, StreamingSparsifierMatcher};
pub use reservoir::EdgeReservoir;
