//! Property-based tests for the streaming matchers.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_graph::csr::from_edges;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_stream::{EdgeReservoir, StreamingGreedyMatcher, StreamingSparsifierMatcher};

const N: usize = 16;

fn arb_stream() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // Distinct-edge streams (the insertion-only model).
    proptest::collection::vec((0..N, 0..N), 0..60).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        pairs
            .into_iter()
            .filter(|&(u, v)| u != v && seen.insert((u.min(v), u.max(v))))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reservoir_never_exceeds_capacity(items in proptest::collection::vec(any::<u32>(), 0..300), cap in 1usize..10, seed in any::<u64>()) {
        let mut r = EdgeReservoir::new(cap);
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, &x) in items.iter().enumerate() {
            r.offer(x, &mut rng);
            prop_assert!(r.len() <= cap);
            prop_assert_eq!(r.seen(), i as u64 + 1);
        }
        // Everything held was offered.
        for held in r.items() {
            prop_assert!(items.contains(held));
        }
    }

    #[test]
    fn streamed_matching_is_matching_of_streamed_graph(stream in arb_stream(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SparsifierParams::with_delta(2, 0.5, 2);
        let mut sm = StreamingSparsifierMatcher::new(N, params);
        for &(u, v) in &stream {
            sm.push_edge(VertexId::new(u), VertexId::new(v), &mut rng);
        }
        let (m, stats) = sm.finish();
        let g = from_edges(N, stream.clone());
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(stats.edges_seen, stream.len() as u64);
        prop_assert!(stats.edges_retained <= stream.len());
        prop_assert!(stats.edges_retained <= N * params.mark_cap());
    }

    #[test]
    fn greedy_stream_maximal_for_any_order(stream in arb_stream()) {
        let mut gm = StreamingGreedyMatcher::new(N);
        for &(u, v) in &stream {
            gm.push_edge(VertexId::new(u), VertexId::new(v));
        }
        let (m, _) = gm.finish();
        let g = from_edges(N, stream);
        prop_assert!(m.is_valid_for(&g));
        prop_assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn low_degree_streams_retain_everything(stream in arb_stream(), seed in any::<u64>()) {
        // With a reservoir capacity at least the max degree, nothing is
        // ever evicted: the retained graph IS the streamed graph.
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SparsifierParams::with_delta(2, 0.5, N); // cap = 2N > any degree
        let mut sm = StreamingSparsifierMatcher::new(N, params);
        for &(u, v) in &stream {
            sm.push_edge(VertexId::new(u), VertexId::new(v), &mut rng);
        }
        let g = from_edges(N, stream);
        let retained = sm.retained_graph();
        prop_assert_eq!(retained.num_edges(), g.num_edges());
    }
}
