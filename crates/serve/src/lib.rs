#![deny(missing_docs)]

//! The resident serve engine behind `sparsimatch serve`.
//!
//! The paper's sparsifier pays off most when the process *stays
//! resident*: the Thm 3.5 dynamic scheme amortizes static recomputation
//! across updates, and the scratch-arena pipeline reaches its
//! zero-allocation steady state only on the second and later solves.
//! Both only exist for a long-running engine, which this crate provides
//! as three layers:
//!
//! * [`protocol`] — the wire format: newline-delimited JSON requests
//!   (`load_graph` / `solve` / `update` / `query` / `metrics` /
//!   `shutdown`) with echoed ids, typed error codes, and strict
//!   schema checking over the hardened [`sparsimatch_obs::Json`]
//!   parser.
//! * [`engine`] — per-session state: the resident graph, the resident
//!   [`PipelineScratch`](sparsimatch_core::scratch::PipelineScratch),
//!   a lazily created
//!   [`DynamicMatcher`](sparsimatch_dynamic::scheme::DynamicMatcher),
//!   and unified work accounting.
//! * [`server`] — the request loop: a reader thread with bounded-queue
//!   admission control (excess load is answered `overloaded`, never
//!   buffered unboundedly) feeding one worker per session, over
//!   stdin/stdout or a unix socket.

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{DaemonStats, EngineConfig, SessionEngine};
pub use protocol::{ErrorCode, Request, WireError, MAX_REQUEST_BYTES, PROTOCOL_VERSION};
pub use server::{
    run_session, run_session_ctl, serve_stdio, serve_unix, ServeConfig, SessionCtl, SessionSummary,
};
