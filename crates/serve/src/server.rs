//! The request loop: newline-delimited JSON over any reader/writer pair,
//! with bounded-queue admission control, plus stdio and unix-socket
//! frontends.
//!
//! Each session runs two threads. The *reader* (the calling thread)
//! pulls lines off the transport, enforces the per-line byte cap, and
//! either enqueues the line or — when the bounded queue is full —
//! answers `overloaded` immediately without touching the engine. The
//! *worker* owns the session's [`SessionEngine`] (and therefore its
//! resident `PipelineScratch`) and drains the queue in order. Responses
//! from both threads interleave safely through a shared locked writer;
//! every response is a single line, so interleaving never tears a
//! message.
//!
//! Admission control is what keeps a flood survivable: a client that
//! outpaces the engine gets explicit `overloaded` errors for the excess
//! instead of unbounded buffering (memory DoS) or transport backpressure
//! deadlock (both sides blocked on full pipes).

use crate::engine::{DaemonStats, EngineConfig, SessionEngine};
use crate::protocol::{self, ErrorCode, Request, MAX_REQUEST_BYTES};
use sparsimatch_obs::{wire, Json};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration, shared by every frontend.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads per pipeline solve (1..=64).
    pub threads: usize,
    /// Backend a `solve` uses when the request names none.
    pub backend: sparsimatch_core::backend::BackendKind,
    /// Bounded request queue per session; requests arriving while the
    /// queue is full are answered `overloaded` and dropped.
    pub queue_cap: usize,
    /// Concurrent sessions accepted in unix-socket mode; further
    /// connections are answered `overloaded` and closed (or, with
    /// `idle_timeout_ms` set, admitted by evicting the idlest session).
    pub max_sessions: usize,
    /// Per-request deadline in milliseconds, measured from admission to
    /// reply. A request that misses it is answered `timeout` — shed
    /// unexecuted when it expires while queued, its result discarded
    /// when a runaway execution finishes late. 0 disables deadlines.
    pub deadline_ms: u64,
    /// Idle threshold for LRU session eviction in unix-socket mode: at
    /// `max_sessions` saturation a new connection evicts the
    /// longest-idle session, provided it has been idle (no lines
    /// received, `load_graph` or not) at least this long. 0 disables
    /// eviction, restoring unconditional `overloaded` at saturation.
    pub idle_timeout_ms: u64,
    /// Bound on the daemon's graceful-drain window after a
    /// `scope: "daemon"` shutdown: live sessions get this long to
    /// finish in-flight work and shed their queues before their sockets
    /// are closed under them.
    pub drain_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            backend: sparsimatch_core::backend::BackendKind::Delta,
            queue_cap: 128,
            max_sessions: 4,
            deadline_ms: 0,
            idle_timeout_ms: 0,
            drain_ms: 2_000,
        }
    }
}

/// What a finished session did, for logging and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionSummary {
    /// Requests the engine handled (ok or error responses).
    pub requests: u64,
    /// Requests dropped by admission control.
    pub overloaded: u64,
    /// Lines rejected before the engine (parse / too-deep / too-large).
    pub wire_errors: u64,
    /// True when the session ended on `shutdown` with `scope: "daemon"`.
    pub daemon_shutdown: bool,
}

enum LineIn {
    Eof,
    TooLong,
    BadUtf8,
    Line(String),
}

/// Read one `\n`-terminated line, enforcing [`MAX_REQUEST_BYTES`]. An
/// over-long line is consumed (without ever buffering more than one
/// chunk of it) and reported as [`LineIn::TooLong`], so a hostile or
/// broken client cannot balloon memory or desynchronize the framing.
fn read_capped_line<R: BufRead>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<LineIn> {
    buf.clear();
    let n = r
        .by_ref()
        .take(MAX_REQUEST_BYTES as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineIn::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_REQUEST_BYTES {
        loop {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    r.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    r.consume(len);
                }
            }
        }
        return Ok(LineIn::TooLong);
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(LineIn::Line(s.to_string())),
        Err(_) => Ok(LineIn::BadUtf8),
    }
}

fn write_line<W: Write>(w: &Mutex<W>, line: &str) -> io::Result<()> {
    let mut w = w.lock().expect("writer lock");
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Lines longer than this get no id recovery when shed by admission
/// control. Shedding exists to stay cheap under a flood; re-parsing up
/// to [`MAX_REQUEST_BYTES`] of JSON per dropped request would undercut
/// that, so big rejected lines are answered with `id: null`.
const PEEK_ID_MAX_BYTES: usize = 4096;

/// Best-effort id recovery for requests rejected before parsing proper
/// (admission control), so the client can still correlate the error.
/// Bounded: `None` for lines over [`PEEK_ID_MAX_BYTES`].
fn peek_id(line: &str) -> Option<u64> {
    if line.len() > PEEK_ID_MAX_BYTES {
        return None;
    }
    let doc = Json::parse(line).ok()?;
    wire::req_u64(&doc, "id").ok()
}

struct Queue {
    /// Admitted lines with their admission timestamps (the deadline
    /// clock starts at admission, not at execution).
    lines: VecDeque<(String, Instant)>,
    eof: bool,
}

/// Frontend hooks and daemon context for [`run_session_ctl`]. The
/// plain-transport default (`SessionCtl::default()`) has no hooks and no
/// daemon, which is exactly stdio mode.
#[derive(Default)]
pub struct SessionCtl<'a> {
    /// Invoked once by the worker right after it decides to end the
    /// session; frontends use it to unblock the reader (e.g.
    /// `UnixStream::shutdown(Read)`).
    pub on_shutdown: Option<&'a (dyn Fn() + Send + Sync)>,
    /// Invoked by the reader for every complete line received — the
    /// idle/LRU bookkeeping signal. Covers the whole session lifetime,
    /// including before any `load_graph`.
    pub on_activity: Option<&'a (dyn Fn() + Send + Sync)>,
    /// Daemon drain flag: once set, already-queued requests are shed
    /// with `shutting_down` instead of executed.
    pub draining: Option<&'a AtomicBool>,
    /// Daemon-wide gauges mirrored into this session's `metrics`.
    pub daemon: Option<Arc<DaemonStats>>,
}

/// Run one session over an arbitrary transport until EOF or `shutdown`.
///
/// `on_shutdown` is invoked (once) by the worker right after the
/// `shutdown` response is written; frontends use it to unblock the
/// reader (e.g. `UnixStream::shutdown(Read)`). Requests still queued
/// when `shutdown` executes are answered `shutting_down`, not dropped;
/// requests queued at plain EOF are completed normally.
pub fn run_session<R, W>(
    reader: R,
    writer: W,
    cfg: &ServeConfig,
    on_shutdown: Option<&(dyn Fn() + Send + Sync)>,
) -> io::Result<SessionSummary>
where
    R: BufRead + Send,
    W: Write + Send,
{
    run_session_ctl(
        reader,
        writer,
        cfg,
        &SessionCtl {
            on_shutdown,
            ..SessionCtl::default()
        },
    )
}

/// [`run_session`] with the full control surface ([`SessionCtl`]): the
/// unix-socket frontend threads activity tracking, the daemon drain
/// flag, and daemon gauges through here.
pub fn run_session_ctl<R, W>(
    mut reader: R,
    writer: W,
    cfg: &ServeConfig,
    ctl: &SessionCtl<'_>,
) -> io::Result<SessionSummary>
where
    R: BufRead + Send,
    W: Write + Send,
{
    let mut engine = SessionEngine::new(EngineConfig {
        threads: cfg.threads,
        backend: cfg.backend,
    });
    if let Some(daemon) = &ctl.daemon {
        engine.set_daemon_stats(Arc::clone(daemon));
    }
    let on_shutdown = ctl.on_shutdown;
    let deadline = (cfg.deadline_ms > 0).then(|| Duration::from_millis(cfg.deadline_ms));
    let stats = engine.shared_stats();
    let writer = Mutex::new(writer);
    let queue = Mutex::new(Queue {
        lines: VecDeque::new(),
        eof: false,
    });
    let ready = Condvar::new();
    let stop = AtomicBool::new(false);
    let daemon_shutdown = AtomicBool::new(false);
    let mut summary = SessionSummary::default();
    let requests = AtomicUsize::new(0);

    std::thread::scope(|scope| -> io::Result<()> {
        let worker = scope.spawn(|| {
            loop {
                let (line, admitted_at) = {
                    let mut q = queue.lock().expect("queue lock");
                    loop {
                        if let Some(entry) = q.lines.pop_front() {
                            break entry;
                        }
                        if q.eof {
                            return;
                        }
                        q = ready.wait(q).expect("queue wait");
                    }
                };
                // Daemon drain: everything still queued is shed with a
                // typed error, never silently dropped or executed.
                if ctl.draining.is_some_and(|d| d.load(Ordering::SeqCst)) {
                    let _ = write_line(
                        &writer,
                        &protocol::error_response(
                            peek_id(&line),
                            ErrorCode::ShuttingDown,
                            "daemon shutting down; request not executed",
                        ),
                    );
                    continue;
                }
                // Deadline shed: a request that expired while queued is
                // answered `timeout` without ever reaching the engine, so
                // one runaway solve cannot cascade into a stale backlog.
                if let Some(d) = deadline {
                    if admitted_at.elapsed() >= d {
                        stats.timed_out.fetch_add(1, Ordering::Relaxed);
                        let _ = write_line(
                            &writer,
                            &protocol::error_response(
                                peek_id(&line),
                                ErrorCode::Timeout,
                                "deadline exceeded while queued; request shed",
                            ),
                        );
                        continue;
                    }
                }
                let mut response;
                let mut end_session = false;
                match protocol::parse_request(&line) {
                    Err((id, e)) => {
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        response = protocol::error_response(id, e.code, &e.message);
                    }
                    Ok(env) => {
                        if let Request::Shutdown { daemon } = env.request {
                            end_session = true;
                            if daemon {
                                daemon_shutdown.store(true, Ordering::SeqCst);
                            }
                        }
                        // Defense in depth: the parse layer is supposed to
                        // reject anything that could trip an engine assert,
                        // but a panic that slips through must take down this
                        // session, not the whole daemon (an unwinding worker
                        // would propagate through every thread scope above).
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine.handle(&env.request)
                            }));
                        response = match outcome {
                            Ok(Ok(body)) => protocol::ok_response(env.id, body),
                            Ok(Err(e)) => {
                                protocol::error_response(Some(env.id), e.code, &e.message)
                            }
                            Err(_) => {
                                // Engine state is suspect after an unwind;
                                // answer and end the session.
                                end_session = true;
                                protocol::error_response(
                                    Some(env.id),
                                    ErrorCode::Internal,
                                    "request handler panicked; closing session",
                                )
                            }
                        };
                        // A runaway execution that finished past the
                        // deadline answers `timeout` too: the client has
                        // already given up on this id, so a late result
                        // would only desynchronize its correlation.
                        // Shutdown is exempt — its side effect happened.
                        if let (Some(d), false) = (deadline, end_session) {
                            if admitted_at.elapsed() >= d {
                                stats.timed_out.fetch_add(1, Ordering::Relaxed);
                                response = protocol::error_response(
                                    Some(env.id),
                                    ErrorCode::Timeout,
                                    "deadline exceeded during execution; result discarded",
                                );
                            }
                        }
                        requests.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // A failed write means the client is gone; end the
                // session rather than grind through the backlog.
                let write_ok = write_line(&writer, &response).is_ok();
                if end_session || !write_ok {
                    stop.store(true, Ordering::SeqCst);
                    // Graceful drain: whatever was already queued behind
                    // the shutdown gets a typed `shutting_down` answer
                    // (skipped when the client is gone anyway).
                    if write_ok {
                        let mut q = queue.lock().expect("queue lock");
                        while let Some((line, _)) = q.lines.pop_front() {
                            let _ = write_line(
                                &writer,
                                &protocol::error_response(
                                    peek_id(&line),
                                    ErrorCode::ShuttingDown,
                                    "session shutting down; request not executed",
                                ),
                            );
                        }
                    }
                    if let Some(hook) = on_shutdown {
                        hook();
                    }
                    return;
                }
            }
        });

        // A transport error (ECONNRESET, not just EOF) must not
        // early-return here: the worker is still parked on the condvar,
        // and std::thread::scope would join it — i.e. deadlock — before
        // the error could propagate. Record the error, fall through to
        // the shared eof + notify + join handshake, and surface it after
        // the worker is down.
        let mut read_error: Option<io::Error> = None;
        let mut buf = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match read_capped_line(&mut reader, &mut buf) {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(LineIn::Eof) => break,
                Ok(LineIn::TooLong) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let msg = format!("request line exceeds {MAX_REQUEST_BYTES} bytes");
                    let _ = write_line(
                        &writer,
                        &protocol::error_response(None, ErrorCode::TooLarge, &msg),
                    );
                }
                Ok(LineIn::BadUtf8) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_line(
                        &writer,
                        &protocol::error_response(
                            None,
                            ErrorCode::Parse,
                            "request line is not valid UTF-8",
                        ),
                    );
                }
                Ok(LineIn::Line(line)) => {
                    if let Some(touch) = ctl.on_activity {
                        touch();
                    }
                    if line.trim().is_empty() {
                        continue;
                    }
                    let admitted = {
                        let mut q = queue.lock().expect("queue lock");
                        if q.lines.len() >= cfg.queue_cap {
                            false
                        } else {
                            q.lines.push_back((line.clone(), Instant::now()));
                            ready.notify_one();
                            true
                        }
                    };
                    if !admitted {
                        stats.overloaded.fetch_add(1, Ordering::Relaxed);
                        let _ = write_line(
                            &writer,
                            &protocol::error_response(
                                peek_id(&line),
                                ErrorCode::Overloaded,
                                "request queue full; retry later",
                            ),
                        );
                    }
                }
            }
        }
        queue.lock().expect("queue lock").eof = true;
        ready.notify_one();
        worker.join().expect("worker thread");
        match read_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    summary.requests = requests.load(Ordering::Relaxed) as u64;
    summary.overloaded = stats.overloaded.load(Ordering::Relaxed);
    summary.wire_errors = stats.wire_errors.load(Ordering::Relaxed);
    summary.daemon_shutdown = daemon_shutdown.load(Ordering::SeqCst);
    Ok(summary)
}

/// Serve one session over stdin/stdout. Returns after `shutdown` or
/// stdin EOF. (After an interactive `shutdown`, the loop finishes when
/// the terminal sends the next line or EOF — piped clients close stdin
/// and are unaffected.)
pub fn serve_stdio(cfg: &ServeConfig) -> io::Result<SessionSummary> {
    run_session(BufReader::new(io::stdin()), io::stdout(), cfg, None)
}

/// One live unix session as the accept loop sees it: when it last heard
/// from its client, how to signal eviction, and the socket handle that
/// can unblock (or kill) its reader from outside.
struct SessionSlot {
    last_activity: Instant,
    evicted: Arc<AtomicBool>,
    sock: UnixStream,
}

/// Pick the longest-idle evictable session, mark it evicted, and
/// unblock its reader. Returns whether an eviction was initiated. Idle
/// time counts from the last *line received* (or connect), so a client
/// that connected and never spoke — never even sent `load_graph` — is
/// evictable like any other.
fn evict_lru(
    registry: &Mutex<HashMap<u64, SessionSlot>>,
    daemon: &DaemonStats,
    idle_timeout: Duration,
) -> bool {
    let reg = registry.lock().expect("registry lock");
    let now = Instant::now();
    let candidate = reg
        .iter()
        .filter(|(_, s)| !s.evicted.load(Ordering::SeqCst))
        .filter(|(_, s)| now.duration_since(s.last_activity) >= idle_timeout)
        .min_by_key(|(_, s)| s.last_activity)
        .map(|(id, _)| *id);
    let Some(id) = candidate else {
        return false;
    };
    let slot = &reg[&id];
    slot.evicted.store(true, Ordering::SeqCst);
    daemon.sessions_evicted.fetch_add(1, Ordering::SeqCst);
    let _ = slot.sock.shutdown(std::net::Shutdown::Read);
    true
}

/// How long the accept loop waits for an evicted session to release its
/// slot before giving up and answering `overloaded` after all.
const EVICT_WAIT_MS: u64 = 2_000;

/// Serve sessions over a unix socket until a `shutdown` request with
/// `scope: "daemon"`. Each accepted connection gets its own session
/// thread (and engine). At `max_sessions` saturation a new connection
/// either evicts the longest-idle session (when `idle_timeout_ms` is
/// set and one qualifies — the evictee is notified with a typed
/// `session_evicted` error) or is answered `overloaded` and closed.
///
/// Daemon shutdown drains gracefully: the accept loop stops (new
/// connects are refused), in-flight requests complete, queued requests
/// across every session are shed with `shutting_down`, and sessions get
/// at most `drain_ms` before their sockets are closed under them — the
/// call returns (and the process can exit 0) within a bounded window.
/// The socket file is created on bind and removed on return.
pub fn serve_unix(path: &Path, cfg: &ServeConfig) -> io::Result<()> {
    let listener = UnixListener::bind(path)?;
    let stop = AtomicBool::new(false);
    let draining = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let daemon = Arc::new(DaemonStats::default());
    let registry: Mutex<HashMap<u64, SessionSlot>> = Mutex::new(HashMap::new());
    let mut next_id = 0u64;
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if active.load(Ordering::SeqCst) >= cfg.max_sessions {
                let mut admitted = false;
                if cfg.idle_timeout_ms > 0
                    && evict_lru(
                        &registry,
                        &daemon,
                        Duration::from_millis(cfg.idle_timeout_ms),
                    )
                {
                    // The evicted session still has to notice, notify its
                    // client, and release the slot; wait for that, bounded.
                    let wait_until = Instant::now() + Duration::from_millis(EVICT_WAIT_MS);
                    while active.load(Ordering::SeqCst) >= cfg.max_sessions
                        && Instant::now() < wait_until
                    {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    admitted = active.load(Ordering::SeqCst) < cfg.max_sessions;
                }
                if !admitted {
                    let mut w = &stream;
                    let _ = writeln!(
                        w,
                        "{}",
                        protocol::error_response(
                            None,
                            ErrorCode::Overloaded,
                            "session limit reached; retry later",
                        )
                    );
                    continue; // dropping the stream closes it
                }
            }
            let id = next_id;
            next_id += 1;
            active.fetch_add(1, Ordering::SeqCst);
            daemon.sessions_active.fetch_add(1, Ordering::SeqCst);
            let evicted = Arc::new(AtomicBool::new(false));
            if let Ok(sock) = stream.try_clone() {
                registry.lock().expect("registry lock").insert(
                    id,
                    SessionSlot {
                        last_activity: Instant::now(),
                        evicted: Arc::clone(&evicted),
                        sock,
                    },
                );
            }
            let (stop, draining, active, registry) = (&stop, &draining, &active, &registry);
            let daemon = Arc::clone(&daemon);
            scope.spawn(move || {
                let session = (|| -> io::Result<SessionSummary> {
                    let reader = BufReader::new(stream.try_clone()?);
                    let writer = stream.try_clone()?;
                    let unblock = stream.try_clone()?;
                    let hook = move || {
                        let _ = unblock.shutdown(std::net::Shutdown::Read);
                    };
                    let touch = || {
                        if let Some(slot) = registry.lock().expect("registry lock").get_mut(&id) {
                            slot.last_activity = Instant::now();
                        }
                    };
                    let ctl = SessionCtl {
                        on_shutdown: Some(&hook),
                        on_activity: Some(&touch),
                        draining: Some(draining),
                        daemon: Some(Arc::clone(&daemon)),
                    };
                    run_session_ctl(reader, writer, cfg, &ctl)
                })();
                // The typed eviction notification: written after the
                // session drained, right before the close the client is
                // about to observe.
                if evicted.load(Ordering::SeqCst) {
                    let mut w = &stream;
                    let _ = writeln!(
                        w,
                        "{}",
                        protocol::error_response(
                            None,
                            ErrorCode::SessionEvicted,
                            "session evicted: idle longest while the session limit was saturated",
                        )
                    );
                }
                registry.lock().expect("registry lock").remove(&id);
                if let Ok(summary) = session {
                    if summary.daemon_shutdown {
                        stop.store(true, Ordering::SeqCst);
                        draining.store(true, Ordering::SeqCst);
                        // Unblock the accept loop with a throwaway
                        // connection to our own socket.
                        let _ = UnixStream::connect(path);
                    }
                }
                active.fetch_sub(1, Ordering::SeqCst);
                daemon.sessions_active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // Graceful drain. The accept loop is done (new connects now fail
        // at connect()), so: tell every live session to shed queued work,
        // unblock their readers, and give in-flight requests `drain_ms`
        // to finish before closing the stragglers' sockets outright —
        // the scope join below is then bounded.
        draining.store(true, Ordering::SeqCst);
        for slot in registry.lock().expect("registry lock").values() {
            let _ = slot.sock.shutdown(std::net::Shutdown::Read);
        }
        let drain_until = Instant::now() + Duration::from_millis(cfg.drain_ms.max(1));
        while active.load(Ordering::SeqCst) > 0 && Instant::now() < drain_until {
            std::thread::sleep(Duration::from_millis(2));
        }
        for slot in registry.lock().expect("registry lock").values() {
            let _ = slot.sock.shutdown(std::net::Shutdown::Both);
        }
    });
    std::fs::remove_file(path).ok();
    Ok(())
}
