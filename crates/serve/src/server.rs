//! The request loop: newline-delimited JSON over any reader/writer pair,
//! with bounded-queue admission control, plus stdio and unix-socket
//! frontends.
//!
//! Each session runs two threads. The *reader* (the calling thread)
//! pulls lines off the transport, enforces the per-line byte cap, and
//! either enqueues the line or — when the bounded queue is full —
//! answers `overloaded` immediately without touching the engine. The
//! *worker* owns the session's [`SessionEngine`] (and therefore its
//! resident `PipelineScratch`) and drains the queue in order. Responses
//! from both threads interleave safely through a shared locked writer;
//! every response is a single line, so interleaving never tears a
//! message.
//!
//! Admission control is what keeps a flood survivable: a client that
//! outpaces the engine gets explicit `overloaded` errors for the excess
//! instead of unbounded buffering (memory DoS) or transport backpressure
//! deadlock (both sides blocked on full pipes).

use crate::engine::{EngineConfig, SessionEngine};
use crate::protocol::{self, ErrorCode, Request, MAX_REQUEST_BYTES};
use sparsimatch_obs::{wire, Json};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Server configuration, shared by every frontend.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads per pipeline solve (1..=64).
    pub threads: usize,
    /// Bounded request queue per session; requests arriving while the
    /// queue is full are answered `overloaded` and dropped.
    pub queue_cap: usize,
    /// Concurrent sessions accepted in unix-socket mode; further
    /// connections are answered `overloaded` and closed.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            queue_cap: 128,
            max_sessions: 4,
        }
    }
}

/// What a finished session did, for logging and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionSummary {
    /// Requests the engine handled (ok or error responses).
    pub requests: u64,
    /// Requests dropped by admission control.
    pub overloaded: u64,
    /// Lines rejected before the engine (parse / too-deep / too-large).
    pub wire_errors: u64,
    /// True when the session ended on `shutdown` with `scope: "daemon"`.
    pub daemon_shutdown: bool,
}

enum LineIn {
    Eof,
    TooLong,
    BadUtf8,
    Line(String),
}

/// Read one `\n`-terminated line, enforcing [`MAX_REQUEST_BYTES`]. An
/// over-long line is consumed (without ever buffering more than one
/// chunk of it) and reported as [`LineIn::TooLong`], so a hostile or
/// broken client cannot balloon memory or desynchronize the framing.
fn read_capped_line<R: BufRead>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<LineIn> {
    buf.clear();
    let n = r
        .by_ref()
        .take(MAX_REQUEST_BYTES as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineIn::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_REQUEST_BYTES {
        loop {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    r.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    r.consume(len);
                }
            }
        }
        return Ok(LineIn::TooLong);
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(LineIn::Line(s.to_string())),
        Err(_) => Ok(LineIn::BadUtf8),
    }
}

fn write_line<W: Write>(w: &Mutex<W>, line: &str) -> io::Result<()> {
    let mut w = w.lock().expect("writer lock");
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Lines longer than this get no id recovery when shed by admission
/// control. Shedding exists to stay cheap under a flood; re-parsing up
/// to [`MAX_REQUEST_BYTES`] of JSON per dropped request would undercut
/// that, so big rejected lines are answered with `id: null`.
const PEEK_ID_MAX_BYTES: usize = 4096;

/// Best-effort id recovery for requests rejected before parsing proper
/// (admission control), so the client can still correlate the error.
/// Bounded: `None` for lines over [`PEEK_ID_MAX_BYTES`].
fn peek_id(line: &str) -> Option<u64> {
    if line.len() > PEEK_ID_MAX_BYTES {
        return None;
    }
    let doc = Json::parse(line).ok()?;
    wire::req_u64(&doc, "id").ok()
}

struct Queue {
    lines: VecDeque<String>,
    eof: bool,
}

/// Run one session over an arbitrary transport until EOF or `shutdown`.
///
/// `on_shutdown` is invoked (once) by the worker right after the
/// `shutdown` response is written; frontends use it to unblock the
/// reader (e.g. `UnixStream::shutdown(Read)`). Requests still queued or
/// arriving after `shutdown` are dropped unanswered.
pub fn run_session<R, W>(
    mut reader: R,
    writer: W,
    cfg: &ServeConfig,
    on_shutdown: Option<&(dyn Fn() + Send + Sync)>,
) -> io::Result<SessionSummary>
where
    R: BufRead + Send,
    W: Write + Send,
{
    let mut engine = SessionEngine::new(EngineConfig {
        threads: cfg.threads,
    });
    let stats = engine.shared_stats();
    let writer = Mutex::new(writer);
    let queue = Mutex::new(Queue {
        lines: VecDeque::new(),
        eof: false,
    });
    let ready = Condvar::new();
    let stop = AtomicBool::new(false);
    let daemon_shutdown = AtomicBool::new(false);
    let mut summary = SessionSummary::default();
    let requests = AtomicUsize::new(0);

    std::thread::scope(|scope| -> io::Result<()> {
        let worker = scope.spawn(|| {
            loop {
                let line = {
                    let mut q = queue.lock().expect("queue lock");
                    loop {
                        if let Some(line) = q.lines.pop_front() {
                            break line;
                        }
                        if q.eof {
                            return;
                        }
                        q = ready.wait(q).expect("queue wait");
                    }
                };
                let response;
                let mut end_session = false;
                match protocol::parse_request(&line) {
                    Err((id, e)) => {
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        response = protocol::error_response(id, e.code, &e.message);
                    }
                    Ok(env) => {
                        if let Request::Shutdown { daemon } = env.request {
                            end_session = true;
                            if daemon {
                                daemon_shutdown.store(true, Ordering::SeqCst);
                            }
                        }
                        // Defense in depth: the parse layer is supposed to
                        // reject anything that could trip an engine assert,
                        // but a panic that slips through must take down this
                        // session, not the whole daemon (an unwinding worker
                        // would propagate through every thread scope above).
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine.handle(&env.request)
                            }));
                        response = match outcome {
                            Ok(Ok(body)) => protocol::ok_response(env.id, body),
                            Ok(Err(e)) => {
                                protocol::error_response(Some(env.id), e.code, &e.message)
                            }
                            Err(_) => {
                                // Engine state is suspect after an unwind;
                                // answer and end the session.
                                end_session = true;
                                protocol::error_response(
                                    Some(env.id),
                                    ErrorCode::Internal,
                                    "request handler panicked; closing session",
                                )
                            }
                        };
                        requests.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // A failed write means the client is gone; end the
                // session rather than grind through the backlog.
                let write_ok = write_line(&writer, &response).is_ok();
                if end_session || !write_ok {
                    stop.store(true, Ordering::SeqCst);
                    if let Some(hook) = on_shutdown {
                        hook();
                    }
                    return;
                }
            }
        });

        // A transport error (ECONNRESET, not just EOF) must not
        // early-return here: the worker is still parked on the condvar,
        // and std::thread::scope would join it — i.e. deadlock — before
        // the error could propagate. Record the error, fall through to
        // the shared eof + notify + join handshake, and surface it after
        // the worker is down.
        let mut read_error: Option<io::Error> = None;
        let mut buf = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match read_capped_line(&mut reader, &mut buf) {
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
                Ok(LineIn::Eof) => break,
                Ok(LineIn::TooLong) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let msg = format!("request line exceeds {MAX_REQUEST_BYTES} bytes");
                    let _ = write_line(
                        &writer,
                        &protocol::error_response(None, ErrorCode::TooLarge, &msg),
                    );
                }
                Ok(LineIn::BadUtf8) => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_line(
                        &writer,
                        &protocol::error_response(
                            None,
                            ErrorCode::Parse,
                            "request line is not valid UTF-8",
                        ),
                    );
                }
                Ok(LineIn::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let admitted = {
                        let mut q = queue.lock().expect("queue lock");
                        if q.lines.len() >= cfg.queue_cap {
                            false
                        } else {
                            q.lines.push_back(line.clone());
                            ready.notify_one();
                            true
                        }
                    };
                    if !admitted {
                        stats.overloaded.fetch_add(1, Ordering::Relaxed);
                        let _ = write_line(
                            &writer,
                            &protocol::error_response(
                                peek_id(&line),
                                ErrorCode::Overloaded,
                                "request queue full; retry later",
                            ),
                        );
                    }
                }
            }
        }
        queue.lock().expect("queue lock").eof = true;
        ready.notify_one();
        worker.join().expect("worker thread");
        match read_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    summary.requests = requests.load(Ordering::Relaxed) as u64;
    summary.overloaded = stats.overloaded.load(Ordering::Relaxed);
    summary.wire_errors = stats.wire_errors.load(Ordering::Relaxed);
    summary.daemon_shutdown = daemon_shutdown.load(Ordering::SeqCst);
    Ok(summary)
}

/// Serve one session over stdin/stdout. Returns after `shutdown` or
/// stdin EOF. (After an interactive `shutdown`, the loop finishes when
/// the terminal sends the next line or EOF — piped clients close stdin
/// and are unaffected.)
pub fn serve_stdio(cfg: &ServeConfig) -> io::Result<SessionSummary> {
    run_session(BufReader::new(io::stdin()), io::stdout(), cfg, None)
}

/// Serve sessions over a unix socket until a `shutdown` request with
/// `scope: "daemon"`. Each accepted connection gets its own session
/// thread (and engine); connections beyond `max_sessions` are answered
/// `overloaded` and closed. The socket file is created on bind and
/// removed on return.
pub fn serve_unix(path: &Path, cfg: &ServeConfig) -> io::Result<()> {
    let listener = UnixListener::bind(path)?;
    let stop = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if active.load(Ordering::SeqCst) >= cfg.max_sessions {
                let mut w = &stream;
                let _ = writeln!(
                    w,
                    "{}",
                    protocol::error_response(
                        None,
                        ErrorCode::Overloaded,
                        "session limit reached; retry later",
                    )
                );
                continue; // dropping the stream closes it
            }
            active.fetch_add(1, Ordering::SeqCst);
            let (stop, active) = (&stop, &active);
            scope.spawn(move || {
                let session = (|| -> io::Result<SessionSummary> {
                    let reader = BufReader::new(stream.try_clone()?);
                    let writer = stream.try_clone()?;
                    let unblock = stream.try_clone()?;
                    let hook = move || {
                        let _ = unblock.shutdown(std::net::Shutdown::Read);
                    };
                    run_session(reader, writer, cfg, Some(&hook))
                })();
                if let Ok(summary) = session {
                    if summary.daemon_shutdown {
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop with a throwaway
                        // connection to our own socket.
                        let _ = UnixStream::connect(path);
                    }
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    std::fs::remove_file(path).ok();
    Ok(())
}
