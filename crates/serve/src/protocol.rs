//! The serve wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! Every request is one line of JSON — an object carrying an `id` (an
//! unsigned integer the client picks; it is echoed verbatim on the
//! response so clients may pipeline) and a `cmd` naming one of the six
//! commands. Every response is one line of JSON with the echoed `id`,
//! an `ok` flag, and either a `result` object or an `error` object with
//! a stable machine-readable `code` plus a human-readable `message`.
//!
//! The parser behind this module is the hardened [`Json::parse`]: depth
//! is capped at [`MAX_PARSE_DEPTH`](sparsimatch_obs::MAX_PARSE_DEPTH),
//! raw control characters and duplicate object keys are rejected, so a
//! hostile client cannot crash the daemon or smuggle an ambiguous
//! request past it. On top of that, requests are schema-checked with
//! [`sparsimatch_obs::wire`]: unknown fields are errors, and a present
//! field of the wrong type never silently falls back to a default.

use sparsimatch_core::backend::BackendKind;
use sparsimatch_core::edcs::EdcsParams;
use sparsimatch_graph::io::{MAX_EDGES, MAX_VERTICES};
use sparsimatch_obs::{wire, Json, ParseErrorKind};

/// Wire-protocol version, reported by the `metrics` command.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one request line, in bytes. Longer lines are answered
/// with a `too_large` error and skipped without buffering them whole.
pub const MAX_REQUEST_BYTES: usize = 8 << 20;

/// Wire floor on `eps`. The theorem needs `0 < eps < 1`, but the wire
/// additionally refuses subnormal-tiny values: the derived per-vertex
/// mark count grows as `(β/ε)·ln(24/ε)`, so an un-floored `eps` lets one
/// request demand unbounded allocation and compute.
pub const MIN_EPS: f64 = 1e-6;

/// Wire cap on `beta`. A neighborhood-independence bound above the
/// vertex cap cannot describe any admissible graph.
pub const MAX_BETA: usize = MAX_VERTICES;

/// Wire cap on the derived per-vertex mark count Δ. At `Δ ≥ MAX_VERTICES`
/// the mark cap exceeds any admissible degree, so every edge is kept and
/// a larger Δ only inflates buffers — reject the request instead.
pub const MAX_DELTA: usize = MAX_VERTICES;

/// Validate the `(beta, eps)` pair shared by `solve` and `update`
/// against the theorem's precondition (`0 < eps < 1`, `beta ≥ 1`) *and*
/// the wire resource caps above, so no accepted request can panic the
/// engine's `SparsifierParams` assert or drive Δ unbounded.
fn validate_solver_params(beta: usize, eps: f64) -> Result<(), WireError> {
    if beta == 0 {
        return Err(WireError::bad("beta must be at least 1"));
    }
    if beta > MAX_BETA {
        return Err(WireError::bad(format!(
            "beta = {beta} exceeds the cap of {MAX_BETA}"
        )));
    }
    validate_eps(eps)?;
    // Mirror SparsifierParams::practical, the scale the engine uses.
    let delta = (beta as f64 / eps) * (24.0 / eps).ln();
    if delta > MAX_DELTA as f64 {
        return Err(WireError::bad(format!(
            "beta = {beta}, eps = {eps} derive a per-vertex mark count of \
             {delta:.0}, over the cap of {MAX_DELTA}"
        )));
    }
    Ok(())
}

/// The ε window shared by every backend (the EDCS path has no derived
/// Δ, but its augmentation stage still needs `0 < eps < 1`, floored at
/// [`MIN_EPS`] for the same resource reason).
fn validate_eps(eps: f64) -> Result<(), WireError> {
    // `contains` is false for NaN, so this also rejects it.
    if !(MIN_EPS..1.0).contains(&eps) {
        return Err(WireError::bad(format!(
            "eps must be in [{MIN_EPS}, 1), got {eps}"
        )));
    }
    Ok(())
}

/// Validate and assemble the EDCS knobs of a `solve` request. The typed
/// [`EdcsParams`] constructor enforces β ≥ 2, λ ∈ (0, 1), and λβ ≥ 1;
/// the wire additionally caps β so no request can demand an H larger
/// than any admissible graph.
fn validate_edcs_params(edcs_beta: usize, lambda: Option<f64>) -> Result<EdcsParams, WireError> {
    if edcs_beta > MAX_BETA {
        return Err(WireError::bad(format!(
            "edcs_beta = {edcs_beta} exceeds the cap of {MAX_BETA}"
        )));
    }
    let lambda = lambda.unwrap_or_else(|| EdcsParams::default_lambda(edcs_beta));
    EdcsParams::new(edcs_beta, lambda).map_err(|e| WireError::bad(e.to_string()))
}

/// Machine-readable error codes (the `error.code` response field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON.
    Parse,
    /// The line nests deeper than the parser's depth cap.
    TooDeep,
    /// The line exceeds [`MAX_REQUEST_BYTES`], or a graph payload
    /// exceeds the input caps.
    TooLarge,
    /// Valid JSON, but not a valid request (schema violation, unknown
    /// command, semantically invalid parameter).
    BadRequest,
    /// `solve` / `update` / `query` before any `load_graph`.
    NoGraph,
    /// The session's request queue is full; the request was dropped.
    Overloaded,
    /// The daemon failed internally (e.g. an I/O error mid-response).
    Internal,
    /// The request's deadline passed before a reply could be produced;
    /// it was shed (or its late result discarded) without side effects
    /// on the reply stream beyond this error.
    Timeout,
    /// This session was evicted: it had been idle longest while the
    /// session limit was saturated and a new client was waiting.
    SessionEvicted,
    /// The session or daemon is draining after `shutdown`; the queued
    /// request was shed without being executed.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable string form used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::TooDeep => "too_deep",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NoGraph => "no_graph",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
            ErrorCode::Timeout => "timeout",
            ErrorCode::SessionEvicted => "session_evicted",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// A request that was rejected, with the code to put on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Construct from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    fn bad(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::BadRequest, message)
    }
}

/// One edge-mutation operation inside an `update` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `{u, v}`.
    Insert(u32, u32),
    /// Delete edge `{u, v}`.
    Delete(u32, u32),
}

/// What a `query` request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryWhat {
    /// Session status: graph shape, current matching size, solve count.
    Status,
    /// The matched pairs of the current matching.
    Pairs,
}

/// A parsed, schema-checked request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Make a graph resident: either an explicit edge list or a family
    /// spec (`family_from_spec` grammar) drawn with `seed`.
    LoadGraph {
        /// Number of vertices.
        n: usize,
        /// Explicit edges (empty when `family` is given).
        edges: Vec<(u32, u32)>,
        /// Family spec, e.g. `"clique-union:2:100"`.
        family: Option<String>,
        /// RNG seed for randomized families.
        seed: u64,
    },
    /// Run the sparsify-and-match pipeline on the resident graph.
    Solve {
        /// Neighborhood-independence bound β (delta backend).
        beta: usize,
        /// Target approximation slack ε.
        eps: f64,
        /// Pipeline RNG seed.
        seed: u64,
        /// Also return the matched pairs, not just the size.
        pairs: bool,
        /// Explicit backend choice; `None` defers to the session default
        /// (`serve --backend`, delta unless overridden).
        backend: Option<BackendKind>,
        /// EDCS parameters, validated at parse time (defaults apply when
        /// the `edcs_beta`/`lambda` fields are absent).
        edcs: EdcsParams,
    },
    /// Apply edge insertions/deletions through the Thm 3.5 dynamic
    /// scheme. `beta`/`eps`/`seed` configure the dynamic matcher when
    /// this session's first `update` creates it; later updates ignore
    /// them.
    Update {
        /// The operations, applied in order.
        ops: Vec<UpdateOp>,
        /// β for the dynamic matcher (first `update` only).
        beta: usize,
        /// ε for the dynamic matcher (first `update` only).
        eps: f64,
        /// Seed for the dynamic matcher (first `update` only).
        seed: u64,
    },
    /// Read session state without mutating it.
    Query {
        /// Which view.
        what: QueryWhat,
    },
    /// Work-counter snapshot plus per-command totals.
    Metrics,
    /// Stop this session (`scope: "session"`, the default) or the whole
    /// daemon (`scope: "daemon"`, unix-socket mode only).
    Shutdown {
        /// True when the whole daemon should stop accepting connections.
        daemon: bool,
    },
}

impl Request {
    /// The command name, as spelled on the wire (used for per-command
    /// accounting).
    pub fn command_name(&self) -> &'static str {
        match self {
            Request::LoadGraph { .. } => "load_graph",
            Request::Solve { .. } => "solve",
            Request::Update { .. } => "update",
            Request::Query { .. } => "query",
            Request::Metrics => "metrics",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

/// An `id`-carrying request envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen request id, echoed on the response.
    pub id: u64,
    /// The request itself.
    pub request: Request,
}

fn field_err(e: wire::FieldError) -> WireError {
    WireError::bad(e.to_string())
}

/// Parse one request line. On failure the error carries whatever `id`
/// could still be recovered (so the error response can be correlated);
/// `None` when the line is not even an object with an integer `id`.
pub fn parse_request(line: &str) -> Result<Envelope, (Option<u64>, WireError)> {
    let doc = Json::parse(line).map_err(|e| {
        let code = if e.kind == ParseErrorKind::TooDeep {
            ErrorCode::TooDeep
        } else {
            ErrorCode::Parse
        };
        (None, WireError::new(code, e.to_string()))
    })?;
    wire::as_object(&doc).map_err(|e| (None, field_err(e)))?;
    let id = wire::req_u64(&doc, "id").map_err(|e| (None, field_err(e)))?;
    let request = parse_command(&doc).map_err(|e| (Some(id), e))?;
    Ok(Envelope { id, request })
}

fn parse_command(doc: &Json) -> Result<Request, WireError> {
    let cmd = wire::req_str(doc, "cmd").map_err(field_err)?;
    match cmd {
        "load_graph" => parse_load_graph(doc),
        "solve" => parse_solve(doc),
        "update" => parse_update(doc),
        "query" => parse_query(doc),
        "metrics" => {
            wire::expect_known_fields(doc, &["id", "cmd"]).map_err(field_err)?;
            Ok(Request::Metrics)
        }
        "shutdown" => {
            wire::expect_known_fields(doc, &["id", "cmd", "scope"]).map_err(field_err)?;
            let daemon = match wire::opt_str(doc, "scope").map_err(field_err)? {
                None | Some("session") => false,
                Some("daemon") => true,
                Some(other) => {
                    return Err(WireError::bad(format!(
                        "scope must be \"session\" or \"daemon\", got {other:?}"
                    )))
                }
            };
            Ok(Request::Shutdown { daemon })
        }
        other => Err(WireError::bad(format!("unknown cmd {other:?}"))),
    }
}

fn parse_load_graph(doc: &Json) -> Result<Request, WireError> {
    wire::expect_known_fields(doc, &["id", "cmd", "n", "edges", "family", "seed"])
        .map_err(field_err)?;
    let n64 = wire::req_u64(doc, "n").map_err(field_err)?;
    if n64 > MAX_VERTICES as u64 {
        return Err(WireError::new(
            ErrorCode::TooLarge,
            format!("n = {n64} exceeds the cap of {MAX_VERTICES} vertices"),
        ));
    }
    let n = n64 as usize;
    let seed = wire::opt_u64(doc, "seed", 0).map_err(field_err)?;
    let family = wire::opt_str(doc, "family")
        .map_err(field_err)?
        .map(str::to_string);
    let has_edges = doc.get("edges").is_some();
    if family.is_some() && has_edges {
        return Err(WireError::bad(
            "give either \"edges\" or \"family\", not both",
        ));
    }
    let mut edges = Vec::new();
    if let Some(raw) = doc.get("edges") {
        let raw = raw
            .as_array()
            .ok_or_else(|| WireError::bad("field \"edges\": expected an array"))?;
        if raw.len() > MAX_EDGES {
            return Err(WireError::new(
                ErrorCode::TooLarge,
                format!("{} edges exceeds the cap of {MAX_EDGES}", raw.len()),
            ));
        }
        edges.reserve(raw.len());
        for (i, pair) in raw.iter().enumerate() {
            let err = || WireError::bad(format!("edges[{i}]: expected [u, v] vertex ids below n"));
            let pair = pair.as_array().ok_or_else(err)?;
            if pair.len() != 2 {
                return Err(err());
            }
            let u = pair[0].as_u64().ok_or_else(err)?;
            let v = pair[1].as_u64().ok_or_else(err)?;
            if u >= n as u64 || v >= n as u64 {
                return Err(WireError::bad(format!(
                    "edges[{i}]: endpoint out of range for n = {n}"
                )));
            }
            if u == v {
                return Err(WireError::bad(format!("edges[{i}]: self-loop at {u}")));
            }
            edges.push((u as u32, v as u32));
        }
    } else if family.is_none() {
        return Err(WireError::bad("load_graph needs \"edges\" or \"family\""));
    }
    Ok(Request::LoadGraph {
        n,
        edges,
        family,
        seed,
    })
}

fn parse_solve(doc: &Json) -> Result<Request, WireError> {
    wire::expect_known_fields(
        doc,
        &[
            "id",
            "cmd",
            "beta",
            "eps",
            "seed",
            "pairs",
            "backend",
            "edcs_beta",
            "lambda",
        ],
    )
    .map_err(field_err)?;
    let backend = match wire::opt_str(doc, "backend").map_err(field_err)? {
        None => None,
        Some(name) => Some(BackendKind::parse(name).ok_or_else(|| {
            WireError::bad(format!(
                "backend must be \"delta\" or \"edcs\", got {name:?}"
            ))
        })?),
    };
    let beta = wire::opt_u64(doc, "beta", 2).map_err(field_err)? as usize;
    let eps = wire::opt_f64(doc, "eps", 0.5).map_err(field_err)?;
    // Backend-specific knobs on the wrong backend are schema errors, not
    // silently ignored fields.
    if backend == Some(BackendKind::Delta)
        && (doc.get("edcs_beta").is_some() || doc.get("lambda").is_some())
    {
        return Err(WireError::bad("edcs_beta/lambda require backend \"edcs\""));
    }
    if backend == Some(BackendKind::Edcs) && doc.get("beta").is_some() {
        return Err(WireError::bad(
            "beta is the delta backend's bound; with backend \"edcs\" use edcs_beta",
        ));
    }
    // Validate for whichever backend can run: an explicit edcs choice
    // needs only the shared eps window; otherwise the session default
    // may be delta, so the delta derivation must stay in bounds too.
    if backend == Some(BackendKind::Edcs) {
        validate_eps(eps)?;
    } else {
        validate_solver_params(beta, eps)?;
    }
    let edcs_beta = wire::opt_u64(doc, "edcs_beta", 16).map_err(field_err)? as usize;
    let lambda = match doc.get("lambda") {
        None => None,
        Some(_) => Some(wire::opt_f64(doc, "lambda", 0.0).map_err(field_err)?),
    };
    let edcs = validate_edcs_params(edcs_beta, lambda)?;
    Ok(Request::Solve {
        beta,
        eps,
        seed: wire::opt_u64(doc, "seed", 0).map_err(field_err)?,
        pairs: wire::opt_bool(doc, "pairs", false).map_err(field_err)?,
        backend,
        edcs,
    })
}

fn parse_update(doc: &Json) -> Result<Request, WireError> {
    wire::expect_known_fields(doc, &["id", "cmd", "ops", "beta", "eps", "seed"])
        .map_err(field_err)?;
    let beta = wire::opt_u64(doc, "beta", 2).map_err(field_err)? as usize;
    let eps = wire::opt_f64(doc, "eps", 0.5).map_err(field_err)?;
    validate_solver_params(beta, eps)?;
    let raw = wire::req_array(doc, "ops").map_err(field_err)?;
    let mut ops = Vec::with_capacity(raw.len());
    for (i, op) in raw.iter().enumerate() {
        let err = || WireError::bad(format!("ops[{i}]: expected [\"insert\"|\"delete\", u, v]"));
        let op = op.as_array().ok_or_else(err)?;
        if op.len() != 3 {
            return Err(err());
        }
        let kind = op[0].as_str().ok_or_else(err)?;
        let u = op[1].as_u64().ok_or_else(err)?;
        let v = op[2].as_u64().ok_or_else(err)?;
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(WireError::bad(format!("ops[{i}]: vertex id out of range")));
        }
        ops.push(match kind {
            "insert" => UpdateOp::Insert(u as u32, v as u32),
            "delete" => UpdateOp::Delete(u as u32, v as u32),
            _ => return Err(err()),
        });
    }
    Ok(Request::Update {
        ops,
        beta,
        eps,
        seed: wire::opt_u64(doc, "seed", 0).map_err(field_err)?,
    })
}

fn parse_query(doc: &Json) -> Result<Request, WireError> {
    wire::expect_known_fields(doc, &["id", "cmd", "what"]).map_err(field_err)?;
    let what = match wire::opt_str(doc, "what").map_err(field_err)? {
        None | Some("status") => QueryWhat::Status,
        Some("pairs") => QueryWhat::Pairs,
        Some(other) => {
            return Err(WireError::bad(format!(
                "what must be \"status\" or \"pairs\", got {other:?}"
            )))
        }
    };
    Ok(Request::Query { what })
}

/// Render a success response line (no trailing newline).
pub fn ok_response(id: u64, result: Json) -> String {
    let mut doc = Json::object();
    doc.set("id", id);
    doc.set("ok", true);
    doc.set("result", result);
    doc.to_compact()
}

/// Render an error response line (no trailing newline). `id` is `null`
/// when it could not be recovered from the request.
pub fn error_response(id: Option<u64>, code: ErrorCode, message: &str) -> String {
    let mut err = Json::object();
    err.set("code", code.as_str());
    err.set("message", message);
    let mut doc = Json::object();
    match id {
        Some(id) => doc.set("id", id),
        None => doc.set("id", Json::Null),
    };
    doc.set("ok", false);
    doc.set("error", err);
    doc.to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases: Vec<(&str, Request)> = vec![
            (
                r#"{"id":1,"cmd":"load_graph","n":4,"edges":[[0,1],[2,3]]}"#,
                Request::LoadGraph {
                    n: 4,
                    edges: vec![(0, 1), (2, 3)],
                    family: None,
                    seed: 0,
                },
            ),
            (
                r#"{"id":2,"cmd":"load_graph","n":40,"family":"clique","seed":7}"#,
                Request::LoadGraph {
                    n: 40,
                    edges: vec![],
                    family: Some("clique".into()),
                    seed: 7,
                },
            ),
            (
                r#"{"id":3,"cmd":"solve","beta":1,"eps":0.5,"seed":9,"pairs":true}"#,
                Request::Solve {
                    beta: 1,
                    eps: 0.5,
                    seed: 9,
                    pairs: true,
                    backend: None,
                    edcs: EdcsParams::new(16, 0.125).unwrap(),
                },
            ),
            (
                r#"{"id":9,"cmd":"solve","backend":"edcs","edcs_beta":8,"lambda":0.25,"eps":0.3}"#,
                Request::Solve {
                    beta: 2,
                    eps: 0.3,
                    seed: 0,
                    pairs: false,
                    backend: Some(BackendKind::Edcs),
                    edcs: EdcsParams::new(8, 0.25).unwrap(),
                },
            ),
            (
                r#"{"id":10,"cmd":"solve","backend":"delta","beta":1,"eps":0.5}"#,
                Request::Solve {
                    beta: 1,
                    eps: 0.5,
                    seed: 0,
                    pairs: false,
                    backend: Some(BackendKind::Delta),
                    edcs: EdcsParams::new(16, 0.125).unwrap(),
                },
            ),
            (
                r#"{"id":4,"cmd":"update","ops":[["insert",0,1],["delete",0,1]]}"#,
                Request::Update {
                    ops: vec![UpdateOp::Insert(0, 1), UpdateOp::Delete(0, 1)],
                    beta: 2,
                    eps: 0.5,
                    seed: 0,
                },
            ),
            (
                r#"{"id":5,"cmd":"query","what":"pairs"}"#,
                Request::Query {
                    what: QueryWhat::Pairs,
                },
            ),
            (r#"{"id":6,"cmd":"metrics"}"#, Request::Metrics),
            (
                r#"{"id":7,"cmd":"shutdown"}"#,
                Request::Shutdown { daemon: false },
            ),
            (
                r#"{"id":8,"cmd":"shutdown","scope":"daemon"}"#,
                Request::Shutdown { daemon: true },
            ),
        ];
        for (line, want) in cases {
            let env = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(env.request, want, "{line}");
        }
    }

    #[test]
    fn error_classification() {
        let code = |line: &str| parse_request(line).unwrap_err().1.code;
        assert_eq!(code("not json"), ErrorCode::Parse);
        assert_eq!(code(&"[".repeat(4096)), ErrorCode::TooDeep);
        assert_eq!(code("[1,2]"), ErrorCode::BadRequest); // not an object
        assert_eq!(code(r#"{"cmd":"metrics"}"#), ErrorCode::BadRequest); // no id
        assert_eq!(
            code(r#"{"id":1,"cmd":"frobnicate"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"id":1,"cmd":"metrics","extra":1}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","eps":-1}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"id":1,"cmd":"load_graph","n":268435456}"#),
            ErrorCode::TooLarge
        );
    }

    #[test]
    fn solver_param_bounds() {
        let code = |line: &str| parse_request(line).unwrap_err().1.code;
        // eps = 1 violates SparsifierParams' 0 < eps < 1 precondition:
        // it must die here as bad_request, never reach the assert.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","eps":1}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"id":1,"cmd":"update","ops":[],"eps":1}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","eps":1.5}"#),
            ErrorCode::BadRequest
        );
        // Below the wire floor.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","eps":1e-300}"#),
            ErrorCode::BadRequest
        );
        // The review's resource-exhaustion probe: huge beta + tiny eps.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","beta":4000000000,"eps":1e-300}"#),
            ErrorCode::BadRequest
        );
        // beta over the vertex cap.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","beta":268435456}"#),
            ErrorCode::BadRequest
        );
        // In-cap beta, in-range eps, but the derived delta explodes.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","beta":100000000,"eps":0.000001}"#),
            ErrorCode::BadRequest
        );
        // The boundaries themselves are accepted.
        for line in [
            r#"{"id":1,"cmd":"solve","eps":0.000001}"#,
            r#"{"id":1,"cmd":"solve","eps":0.999999}"#,
            r#"{"id":1,"cmd":"update","ops":[],"eps":0.999999}"#,
        ] {
            parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        }
    }

    #[test]
    fn edcs_solver_param_bounds() {
        let err = |line: &str| parse_request(line).unwrap_err().1;
        let code = |line: &str| err(line).code;
        // Unknown backend names are typed errors.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","backend":"warp","eps":0.3}"#),
            ErrorCode::BadRequest
        );
        // EDCS invariant violations die at the parse layer: β < 2, λ out
        // of (0, 1), λβ < 1.
        for line in [
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":1,"eps":0.3}"#,
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":8,"lambda":1.5,"eps":0.3}"#,
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":8,"lambda":-0.1,"eps":0.3}"#,
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":100,"lambda":0.001,"eps":0.3}"#,
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":268435457,"eps":0.3}"#,
        ] {
            assert_eq!(code(line), ErrorCode::BadRequest, "{line}");
        }
        // The eps window applies to the edcs backend too.
        assert_eq!(
            code(r#"{"id":1,"cmd":"solve","backend":"edcs","eps":1}"#),
            ErrorCode::BadRequest
        );
        // Cross-backend knobs are schema errors, not silently ignored.
        assert!(
            err(r#"{"id":1,"cmd":"solve","backend":"delta","edcs_beta":8,"eps":0.3}"#)
                .message
                .contains("require backend")
        );
        assert!(
            err(r#"{"id":1,"cmd":"solve","backend":"edcs","beta":2,"eps":0.3}"#)
                .message
                .contains("use edcs_beta")
        );
        // An explicit edcs backend skips the delta Δ derivation, so a
        // beta-free request with tiny eps is fine where delta's is not.
        parse_request(r#"{"id":1,"cmd":"solve","backend":"edcs","eps":0.000001}"#).unwrap();
        // Valid explicit EDCS knobs round-trip.
        parse_request(
            r#"{"id":1,"cmd":"solve","backend":"edcs","edcs_beta":4,"lambda":0.5,"eps":0.3}"#,
        )
        .unwrap();
    }

    #[test]
    fn id_is_recovered_when_the_command_is_bad() {
        let (id, err) = parse_request(r#"{"id":41,"cmd":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(41));
        assert_eq!(err.code, ErrorCode::BadRequest);
        // ... but not when the document itself is unusable.
        let (id, _) = parse_request("][").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn load_graph_edge_validation() {
        let err = |line: &str| parse_request(line).unwrap_err().1;
        assert!(err(r#"{"id":1,"cmd":"load_graph","n":2,"edges":[[0,2]]}"#)
            .message
            .contains("out of range"));
        assert!(err(r#"{"id":1,"cmd":"load_graph","n":2,"edges":[[1,1]]}"#)
            .message
            .contains("self-loop"));
        assert!(err(r#"{"id":1,"cmd":"load_graph","n":2}"#)
            .message
            .contains("\"edges\" or \"family\""));
        assert!(
            err(r#"{"id":1,"cmd":"load_graph","n":2,"edges":[[0,1]],"family":"clique"}"#)
                .message
                .contains("not both")
        );
    }

    #[test]
    fn responses_render_compactly() {
        let mut body = Json::object();
        body.set("n", 4u64);
        assert_eq!(
            ok_response(3, body),
            r#"{"id":3,"ok":true,"result":{"n":4}}"#
        );
        assert_eq!(
            error_response(None, ErrorCode::Parse, "bad"),
            r#"{"id":null,"ok":false,"error":{"code":"parse","message":"bad"}}"#
        );
        assert_eq!(
            error_response(Some(9), ErrorCode::Overloaded, "queue full"),
            r#"{"id":9,"ok":false,"error":{"code":"overloaded","message":"queue full"}}"#
        );
    }
}
