//! The per-session engine: resident graph, resident scratch, optional
//! dynamic matcher, unified work accounting.
//!
//! One [`SessionEngine`] lives behind each connection's worker. Its
//! [`PipelineScratch`] survives across requests, so the session's second
//! and later `solve`s hit the zero-allocation steady state the scratch
//! arena exists for — and because every pipeline entry point runs the
//! same implementation, a warm in-daemon solve is byte-identical to a
//! one-shot CLI solve for the same graph and seed.

use crate::protocol::{ErrorCode, QueryWhat, Request, UpdateOp, WireError, PROTOCOL_VERSION};
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::backend::BackendKind;
use sparsimatch_core::edcs::{approx_mcm_via_edcs_with_scratch_metered, EdcsParams};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier_with_scratch_metered;
use sparsimatch_core::scratch::PipelineScratch;
use sparsimatch_dynamic::adversary::Update;
use sparsimatch_dynamic::scheme::DynamicMatcher;
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_graph::generators::{family_from_spec, family_size_estimate};
use sparsimatch_graph::ids::VertexId;
use sparsimatch_graph::io::{MAX_EDGES, MAX_VERTICES};
use sparsimatch_obs::{keys, Json, WorkMeter};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared between a session's engine and the I/O layer around
/// it (the reader thread rejects overloads without ever reaching the
/// engine, but `metrics` must still report them).
#[derive(Debug, Default)]
pub struct SharedStats {
    /// Requests dropped by admission control.
    pub overloaded: AtomicU64,
    /// Lines rejected before reaching the engine (parse/too-deep/too-large).
    pub wire_errors: AtomicU64,
    /// Requests answered `timeout`: shed unexecuted past their deadline,
    /// or executed but finished after it (late result discarded).
    pub timed_out: AtomicU64,
}

/// Daemon-wide gauges shared by every session of a unix-socket daemon,
/// so any session's `metrics` can report the lifecycle state of the
/// whole process. Stdio sessions have no daemon; their `metrics` report
/// the single-session equivalents.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Sessions currently holding a slot.
    pub sessions_active: AtomicU64,
    /// Sessions evicted by the idle/LRU policy since the daemon started.
    pub sessions_evicted: AtomicU64,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads for each pipeline solve (1..=64).
    pub threads: usize,
    /// Backend a `solve` uses when the request names none
    /// (`serve --backend`).
    pub backend: BackendKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            backend: BackendKind::Delta,
        }
    }
}

const COMMANDS: [&str; 6] = [
    "load_graph",
    "solve",
    "update",
    "query",
    "metrics",
    "shutdown",
];

/// A session's resident state. See the module docs.
pub struct SessionEngine {
    threads: usize,
    default_backend: BackendKind,
    graph: Option<CsrGraph>,
    scratch: PipelineScratch,
    dynamic: Option<DynamicMatcher>,
    meter: WorkMeter,
    stats: Arc<SharedStats>,
    /// Pairs of the last static solve, kept in a reusable buffer so
    /// `query what=pairs` does not re-run anything (and so the steady
    /// state stays allocation-free once the buffer has grown).
    last_pairs: Vec<(u32, u32)>,
    last_solve_size: Option<u64>,
    solves: u64,
    command_counts: [u64; COMMANDS.len()],
    daemon: Option<Arc<DaemonStats>>,
}

impl SessionEngine {
    /// A fresh session with no resident graph.
    pub fn new(cfg: EngineConfig) -> Self {
        SessionEngine {
            threads: cfg.threads,
            default_backend: cfg.backend,
            graph: None,
            scratch: PipelineScratch::new(),
            dynamic: None,
            meter: WorkMeter::new(),
            stats: Arc::new(SharedStats::default()),
            last_pairs: Vec::new(),
            last_solve_size: None,
            solves: 0,
            command_counts: [0; COMMANDS.len()],
            daemon: None,
        }
    }

    /// The stats block the surrounding I/O layer should increment.
    pub fn shared_stats(&self) -> Arc<SharedStats> {
        Arc::clone(&self.stats)
    }

    /// Attach the daemon-wide gauges this session's `metrics` should
    /// mirror (unix-socket mode; stdio sessions report defaults).
    pub fn set_daemon_stats(&mut self, daemon: Arc<DaemonStats>) {
        self.daemon = Some(daemon);
    }

    /// Total solves this session has run (used by tests to assert the
    /// warm path was exercised).
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Handle one request, returning the `result` body on success.
    pub fn handle(&mut self, request: &Request) -> Result<Json, WireError> {
        let slot = COMMANDS
            .iter()
            .position(|c| *c == request.command_name())
            .expect("every request maps to a command slot");
        self.command_counts[slot] += 1;
        match request {
            Request::LoadGraph {
                n,
                edges,
                family,
                seed,
            } => self.load_graph(*n, edges, family.as_deref(), *seed),
            Request::Solve {
                beta,
                eps,
                seed,
                pairs,
                backend,
                edcs,
            } => self.solve(*beta, *eps, *seed, *pairs, *backend, edcs),
            Request::Update {
                ops,
                beta,
                eps,
                seed,
            } => self.update(ops, *beta, *eps, *seed),
            Request::Query { what } => self.query(*what),
            Request::Metrics => Ok(self.metrics()),
            Request::Shutdown { daemon } => {
                let mut body = Json::object();
                body.set("stopping", if *daemon { "daemon" } else { "session" });
                Ok(body)
            }
        }
    }

    fn load_graph(
        &mut self,
        n: usize,
        edges: &[(u32, u32)],
        family: Option<&str>,
        seed: u64,
    ) -> Result<Json, WireError> {
        let g = match family {
            Some(spec) => {
                // The parse layer caps only the explicit-edges path; a
                // family spec can describe a graph astronomically larger
                // than its request (`clique` on 10^6 vertices is ~5·10^11
                // edges), so check the analytic size estimate against the
                // same input caps *before* generating anything.
                let est = family_size_estimate(spec, n)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                if est.vertices > MAX_VERTICES as u128 || est.edges > MAX_EDGES as u128 {
                    return Err(WireError::new(
                        ErrorCode::TooLarge,
                        format!(
                            "family {spec:?} on {n} vertices generates ~{} vertices and \
                             ~{} edges, over the caps of {MAX_VERTICES} / {MAX_EDGES}",
                            est.vertices, est.edges
                        ),
                    ));
                }
                let mut rng = StdRng::seed_from_u64(seed);
                let g = family_from_spec(spec, n, &mut rng)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                // Randomized estimates are expectations; catch the
                // (concentration-defying) tail after the fact too.
                if g.num_vertices() > MAX_VERTICES || g.num_edges() > MAX_EDGES {
                    return Err(WireError::new(
                        ErrorCode::TooLarge,
                        format!(
                            "family {spec:?} generated {} vertices / {} edges, over the \
                             caps of {MAX_VERTICES} / {MAX_EDGES}",
                            g.num_vertices(),
                            g.num_edges()
                        ),
                    ));
                }
                g
            }
            None => {
                // Duplicate edges make the request ambiguous (was the
                // repetition intended?) — reject, mirroring the edge-list
                // file reader's contract.
                let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edges.len());
                let mut b = GraphBuilder::with_capacity(n, edges.len());
                for (i, &(u, v)) in edges.iter().enumerate() {
                    let key = if u < v { (u, v) } else { (v, u) };
                    if !seen.insert(key) {
                        return Err(WireError::new(
                            ErrorCode::BadRequest,
                            format!("edges[{i}]: duplicate edge ({u}, {v})"),
                        ));
                    }
                    b.add_edge(VertexId(u), VertexId(v));
                }
                b.build()
            }
        };
        // A new graph invalidates everything derived from the old one.
        self.dynamic = None;
        self.last_pairs.clear();
        self.last_solve_size = None;
        let mut body = Json::object();
        body.set("n", g.num_vertices());
        body.set("m", g.num_edges());
        self.graph = Some(g);
        Ok(body)
    }

    fn solve(
        &mut self,
        beta: usize,
        eps: f64,
        seed: u64,
        pairs: bool,
        backend: Option<BackendKind>,
        edcs: &EdcsParams,
    ) -> Result<Json, WireError> {
        // Solve reflects dynamic updates: snapshot the matcher's current
        // graph if one exists, else use the resident static graph.
        let snapshot;
        let g: &CsrGraph = match (&self.dynamic, &self.graph) {
            (Some(dm), _) => {
                snapshot = dm.graph().to_csr();
                &snapshot
            }
            (None, Some(g)) => g,
            (None, None) => {
                return Err(WireError::new(
                    ErrorCode::NoGraph,
                    "solve before load_graph",
                ))
            }
        };
        let backend = backend.unwrap_or(self.default_backend);
        let warm = self.solves > 0;
        let result = match backend {
            BackendKind::Delta => {
                let params = SparsifierParams::practical(beta, eps);
                approx_mcm_via_sparsifier_with_scratch_metered(
                    g,
                    &params,
                    seed,
                    self.threads,
                    &mut self.meter,
                    &mut self.scratch,
                )
            }
            // EDCS construction is deterministic; `seed` is ignored by
            // design (the CLI documents the same contract).
            BackendKind::Edcs => approx_mcm_via_edcs_with_scratch_metered(
                g,
                edcs,
                eps,
                self.threads,
                &mut self.meter,
                &mut self.scratch,
            ),
        }
        .map_err(|e| WireError::new(ErrorCode::Internal, e.to_string()))?;
        self.solves += 1;
        self.last_pairs.clear();
        self.last_pairs
            .extend(result.matching.pairs().map(|(u, v)| (u.0, v.0)));
        self.last_solve_size = Some(result.matching.len() as u64);
        let mut body = Json::object();
        body.set("backend", backend.as_str());
        body.set("matching_size", result.matching.len());
        body.set("sparsifier_edges", result.sparsifier.edges);
        body.set("probes", result.probes.total());
        body.set("warm", warm);
        if pairs {
            body.set("pairs", pairs_json(&self.last_pairs));
        }
        Ok(body)
    }

    fn update(
        &mut self,
        ops: &[UpdateOp],
        beta: usize,
        eps: f64,
        seed: u64,
    ) -> Result<Json, WireError> {
        let Some(graph) = &self.graph else {
            return Err(WireError::new(
                ErrorCode::NoGraph,
                "update before load_graph",
            ));
        };
        let n = graph.num_vertices();
        for (i, op) in ops.iter().enumerate() {
            let (UpdateOp::Insert(u, v) | UpdateOp::Delete(u, v)) = *op;
            if u as usize >= n || v as usize >= n {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("ops[{i}]: endpoint out of range for n = {n}"),
                ));
            }
            if u == v {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("ops[{i}]: self-loop at {u}"),
                ));
            }
        }
        let dm = match &mut self.dynamic {
            Some(dm) => dm,
            None => {
                // First update: stand up the Thm 3.5 scheme, seeded with
                // the resident graph's edges (silent preload — the work
                // counters track only client-requested updates).
                let params = SparsifierParams::practical(beta, eps);
                let mut dm = DynamicMatcher::new(n, params, seed);
                for (_, u, v) in graph.edges() {
                    dm.apply(Update::Insert(u, v));
                }
                self.dynamic.insert(dm)
            }
        };
        let mut work = 0u64;
        let mut swapped = 0u64;
        for op in ops {
            let update = match *op {
                UpdateOp::Insert(u, v) => Update::Insert(VertexId(u), VertexId(v)),
                UpdateOp::Delete(u, v) => Update::Delete(VertexId(u), VertexId(v)),
            };
            let report = dm.apply_metered(update, &mut self.meter);
            work += report.work;
            swapped += u64::from(report.swapped);
        }
        let mut body = Json::object();
        body.set("applied", ops.len());
        body.set("matching_size", dm.matching().len());
        body.set("work", work);
        body.set("window_swaps", swapped);
        Ok(body)
    }

    fn query(&self, what: QueryWhat) -> Result<Json, WireError> {
        match what {
            QueryWhat::Status => {
                let mut body = Json::object();
                let (n, m) = match (&self.dynamic, &self.graph) {
                    (Some(dm), _) => (dm.graph().num_vertices(), dm.graph().num_edges()),
                    (None, Some(g)) => (g.num_vertices(), g.num_edges()),
                    (None, None) => {
                        body.set("loaded", false);
                        return Ok(body);
                    }
                };
                body.set("loaded", true);
                body.set("n", n);
                body.set("m", m);
                match (&self.dynamic, self.last_solve_size) {
                    (Some(dm), _) => body.set("matching_size", dm.matching().len()),
                    (None, Some(size)) => body.set("matching_size", size),
                    (None, None) => body.set("matching_size", Json::Null),
                };
                body.set("solves", self.solves);
                body.set("dynamic", self.dynamic.is_some());
                Ok(body)
            }
            QueryWhat::Pairs => {
                if self.graph.is_none() && self.dynamic.is_none() {
                    return Err(WireError::new(
                        ErrorCode::NoGraph,
                        "query pairs before load_graph",
                    ));
                }
                let mut body = Json::object();
                match &self.dynamic {
                    Some(dm) => {
                        let pairs: Vec<(u32, u32)> =
                            dm.matching().pairs().map(|(u, v)| (u.0, v.0)).collect();
                        body.set("pairs", pairs_json(&pairs));
                    }
                    None => {
                        body.set("pairs", pairs_json(&self.last_pairs));
                    }
                };
                Ok(body)
            }
        }
    }

    fn metrics(&self) -> Json {
        let mut commands = Json::object();
        for (name, count) in COMMANDS.iter().zip(self.command_counts) {
            commands.set(name, count);
        }
        let mut body = Json::object();
        body.set("protocol", PROTOCOL_VERSION);
        body.set("commands", commands);
        body.set("overloaded", self.stats.overloaded.load(Ordering::Relaxed));
        body.set(
            "wire_errors",
            self.stats.wire_errors.load(Ordering::Relaxed),
        );
        body.set(
            "requests_timed_out",
            self.stats.timed_out.load(Ordering::Relaxed),
        );
        // Lifecycle gauges: daemon-wide in unix mode, the single-session
        // equivalents (1 active, 0 evicted) over stdio.
        body.set(
            "sessions_active",
            self.daemon
                .as_ref()
                .map_or(1, |d| d.sessions_active.load(Ordering::Relaxed)),
        );
        body.set(
            "sessions_evicted",
            self.daemon
                .as_ref()
                .map_or(0, |d| d.sessions_evicted.load(Ordering::Relaxed)),
        );
        // Cumulative stream-scan retries recorded by any streamed build
        // metered into this session (0 until one runs).
        body.set("io_retries", self.meter.get(keys::IO_RETRIES));
        body.set("scratch_capacity_bytes", self.scratch.capacity_bytes());
        // Resident footprint of the loaded graph: the dynamic adjacency
        // list when updates have been applied, the static CSR otherwise,
        // null before any load_graph.
        body.set(
            "graph_memory_bytes",
            match (&self.dynamic, &self.graph) {
                (Some(dm), _) => Json::from(dm.graph().memory_bytes() as u64),
                (None, Some(g)) => Json::from(g.memory_bytes() as u64),
                (None, None) => Json::Null,
            },
        );
        body.set("meter", self.meter.snapshot_counters());
        body
    }
}

fn pairs_json(pairs: &[(u32, u32)]) -> Json {
    Json::Array(
        pairs
            .iter()
            .map(|&(u, v)| Json::Array(vec![Json::from(u64::from(u)), Json::from(u64::from(v))]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn handle(engine: &mut SessionEngine, line: &str) -> Result<Json, WireError> {
        let env = parse_request(line).expect("test request parses");
        engine.handle(&env.request)
    }

    #[test]
    fn warm_solves_are_byte_identical_to_one_shot() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        handle(
            &mut engine,
            r#"{"id":1,"cmd":"load_graph","n":40,"family":"clique"}"#,
        )
        .unwrap();
        let solve = r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5,"seed":7,"pairs":true}"#;
        let cold = handle(&mut engine, solve).unwrap();
        let warm = handle(&mut engine, solve).unwrap();
        assert_eq!(cold.get("warm").unwrap().as_bool(), Some(false));
        assert_eq!(warm.get("warm").unwrap().as_bool(), Some(true));
        // Warm equals cold field-for-field (besides the warm flag).
        assert_eq!(cold.get("pairs"), warm.get("pairs"));
        assert_eq!(cold.get("matching_size"), warm.get("matching_size"));
        assert_eq!(cold.get("probes"), warm.get("probes"));
        // And both equal the one-shot library pipeline for the same seed.
        let g = sparsimatch_graph::generators::clique(40);
        let params = SparsifierParams::practical(1, 0.5);
        let one_shot =
            sparsimatch_core::pipeline::approx_mcm_via_sparsifier(&g, &params, 7, 1).unwrap();
        let expected: Vec<Json> = one_shot
            .matching
            .pairs()
            .map(|(u, v)| Json::Array(vec![Json::from(u64::from(u.0)), Json::from(u64::from(v.0))]))
            .collect();
        assert_eq!(warm.get("pairs").unwrap().as_array().unwrap(), expected);
    }

    #[test]
    fn edcs_solves_dispatch_by_request_and_session_default() {
        // Explicit backend on the request.
        let mut engine = SessionEngine::new(EngineConfig::default());
        handle(
            &mut engine,
            r#"{"id":1,"cmd":"load_graph","n":40,"family":"clique"}"#,
        )
        .unwrap();
        let solve =
            r#"{"id":2,"cmd":"solve","backend":"edcs","edcs_beta":8,"eps":0.3,"pairs":true}"#;
        let cold = handle(&mut engine, solve).unwrap();
        assert_eq!(cold.get("backend").unwrap().as_str(), Some("edcs"));
        // A 40-clique has a perfect matching and EDCS keeps enough of it.
        assert_eq!(cold.get("matching_size").unwrap().as_u64(), Some(20));
        // Warm solve through the shared scratch arena is identical.
        let warm = handle(&mut engine, solve).unwrap();
        assert_eq!(warm.get("warm").unwrap().as_bool(), Some(true));
        assert_eq!(cold.get("pairs"), warm.get("pairs"));
        // And matches the library entry point.
        let g = sparsimatch_graph::generators::clique(40);
        let params = EdcsParams::new(8, EdcsParams::default_lambda(8)).unwrap();
        let lib = sparsimatch_core::edcs::approx_mcm_via_edcs(&g, &params, 0.3, 1).unwrap();
        assert_eq!(
            cold.get("matching_size").unwrap().as_u64(),
            Some(lib.matching.len() as u64)
        );

        // Session default: a backend-free solve on an edcs-default engine.
        let mut engine = SessionEngine::new(EngineConfig {
            threads: 1,
            backend: BackendKind::Edcs,
        });
        handle(
            &mut engine,
            r#"{"id":1,"cmd":"load_graph","n":40,"family":"clique"}"#,
        )
        .unwrap();
        let body = handle(&mut engine, r#"{"id":2,"cmd":"solve","eps":0.3}"#).unwrap();
        assert_eq!(body.get("backend").unwrap().as_str(), Some("edcs"));
        // ... and an explicit delta request overrides the session default.
        let body = handle(
            &mut engine,
            r#"{"id":3,"cmd":"solve","backend":"delta","beta":1,"eps":0.5}"#,
        )
        .unwrap();
        assert_eq!(body.get("backend").unwrap().as_str(), Some("delta"));
        assert_eq!(body.get("matching_size").unwrap().as_u64(), Some(20));
    }

    #[test]
    fn update_then_solve_reflects_the_mutated_graph() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        handle(
            &mut engine,
            r#"{"id":1,"cmd":"load_graph","n":6,"edges":[[0,1],[2,3]]}"#,
        )
        .unwrap();
        let body = handle(
            &mut engine,
            r#"{"id":2,"cmd":"update","ops":[["insert",4,5]],"beta":1,"eps":0.5}"#,
        )
        .unwrap();
        assert_eq!(body.get("applied").unwrap().as_u64(), Some(1));
        // The window scheme publishes lazily, so the served matching may
        // lag the latest insert; it still meets the (1+ε) guarantee.
        let size = body.get("matching_size").unwrap().as_u64().unwrap();
        assert!((2..=3).contains(&size), "served size {size}");
        let status = handle(&mut engine, r#"{"id":3,"cmd":"query"}"#).unwrap();
        assert_eq!(status.get("m").unwrap().as_u64(), Some(3));
        assert_eq!(status.get("dynamic").unwrap().as_bool(), Some(true));
        let solve = handle(&mut engine, r#"{"id":4,"cmd":"solve","beta":1,"eps":0.5}"#).unwrap();
        assert_eq!(solve.get("matching_size").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn no_graph_paths_and_duplicate_edges() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        for line in [
            r#"{"id":1,"cmd":"solve"}"#,
            r#"{"id":2,"cmd":"update","ops":[]}"#,
            r#"{"id":3,"cmd":"query","what":"pairs"}"#,
        ] {
            let err = handle(&mut engine, line).unwrap_err();
            assert_eq!(err.code, ErrorCode::NoGraph, "{line}");
        }
        let status = handle(&mut engine, r#"{"id":4,"cmd":"query"}"#).unwrap();
        assert_eq!(status.get("loaded").unwrap().as_bool(), Some(false));
        let err = handle(
            &mut engine,
            r#"{"id":5,"cmd":"load_graph","n":3,"edges":[[0,1],[1,0]]}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("duplicate edge"), "{}", err.message);
    }

    #[test]
    fn oversized_family_requests_are_rejected_before_generation() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        // The review's memory-DoS probe: a million-vertex clique is
        // ~5*10^11 edges. This must come back too_large (fast), not OOM.
        for line in [
            r#"{"id":1,"cmd":"load_graph","n":1000000,"family":"clique"}"#,
            r#"{"id":2,"cmd":"load_graph","n":1000000,"family":"gnp:0.9"}"#,
            r#"{"id":3,"cmd":"load_graph","n":1000000,"family":"unit-disk:10000000"}"#,
            r#"{"id":4,"cmd":"load_graph","n":100000,"family":"line-gnp:0.5"}"#,
            r#"{"id":5,"cmd":"load_graph","n":1000000,"family":"clique-union:1000:100000"}"#,
        ] {
            let err = handle(&mut engine, line).unwrap_err();
            assert_eq!(err.code, ErrorCode::TooLarge, "{line}");
        }
        // Family params that used to hit generator asserts are clean
        // bad_request errors now.
        for line in [
            r#"{"id":6,"cmd":"load_graph","n":10,"family":"clique-union:0:5"}"#,
            r#"{"id":7,"cmd":"load_graph","n":2,"family":"cycle"}"#,
        ] {
            let err = handle(&mut engine, line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
        // In-cap requests still work, including the n = 0 corner.
        handle(
            &mut engine,
            r#"{"id":8,"cmd":"load_graph","n":0,"family":"clique"}"#,
        )
        .unwrap();
        let body = handle(
            &mut engine,
            r#"{"id":9,"cmd":"load_graph","n":1000000,"family":"path"}"#,
        )
        .unwrap();
        assert_eq!(body.get("m").unwrap().as_u64(), Some(999999));
    }

    #[test]
    fn metrics_counts_commands() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        handle(
            &mut engine,
            r#"{"id":1,"cmd":"load_graph","n":10,"family":"path"}"#,
        )
        .unwrap();
        handle(&mut engine, r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5}"#).unwrap();
        engine
            .shared_stats()
            .overloaded
            .fetch_add(3, Ordering::Relaxed);
        let m = handle(&mut engine, r#"{"id":3,"cmd":"metrics"}"#).unwrap();
        assert_eq!(m.get("protocol").unwrap().as_u64(), Some(PROTOCOL_VERSION));
        let commands = m.get("commands").unwrap();
        assert_eq!(commands.get("load_graph").unwrap().as_u64(), Some(1));
        assert_eq!(commands.get("solve").unwrap().as_u64(), Some(1));
        assert_eq!(commands.get("metrics").unwrap().as_u64(), Some(1));
        assert_eq!(m.get("overloaded").unwrap().as_u64(), Some(3));
        assert!(m.get("scratch_capacity_bytes").unwrap().as_u64().unwrap() > 0);
        assert!(m
            .get("meter")
            .unwrap()
            .get("counters")
            .unwrap()
            .get(sparsimatch_obs::keys::DEGREE_PROBES)
            .is_some());
    }

    #[test]
    fn metrics_reports_graph_memory_across_session_states() {
        let mut engine = SessionEngine::new(EngineConfig::default());
        // Before any load_graph there is no graph to measure.
        let m = handle(&mut engine, r#"{"id":1,"cmd":"metrics"}"#).unwrap();
        assert!(matches!(m.get("graph_memory_bytes"), Some(Json::Null)));
        // Static session: the CSR footprint.
        handle(
            &mut engine,
            r#"{"id":2,"cmd":"load_graph","n":100,"family":"path"}"#,
        )
        .unwrap();
        let m = handle(&mut engine, r#"{"id":3,"cmd":"metrics"}"#).unwrap();
        let csr_bytes = m.get("graph_memory_bytes").unwrap().as_u64().unwrap();
        assert!(csr_bytes > 0);
        // Dynamic session: the adjacency-list footprint, which carries
        // per-vertex vectors and the position index and so exceeds the
        // packed CSR for the same edges.
        handle(
            &mut engine,
            r#"{"id":4,"cmd":"update","ops":[["insert",0,2]],"beta":1,"eps":0.5}"#,
        )
        .unwrap();
        let m = handle(&mut engine, r#"{"id":5,"cmd":"metrics"}"#).unwrap();
        let dyn_bytes = m.get("graph_memory_bytes").unwrap().as_u64().unwrap();
        assert!(dyn_bytes > csr_bytes);
    }
}
