//! Golden wire-protocol tests: scripted sessions through the real
//! request loop ([`run_session`]) covering every command, the
//! malformed-request paths (bad JSON, over-deep nesting, oversized
//! line), and the overload path, plus a unix-socket end-to-end session.

use sparsimatch_obs::Json;
use sparsimatch_serve::{run_session, serve_unix, ServeConfig, MAX_REQUEST_BYTES};
use std::io::{BufRead, BufReader, Cursor, Write};
use std::os::unix::net::UnixStream;

fn run_script(script: &str, cfg: &ServeConfig) -> (Vec<String>, sparsimatch_serve::SessionSummary) {
    let mut out: Vec<u8> = Vec::new();
    let summary =
        run_session(Cursor::new(script.to_string()), &mut out, cfg, None).expect("session runs");
    let lines = String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect();
    (lines, summary)
}

/// Every response line must be a parseable single-line JSON object with
/// an `ok` flag.
fn parse_response(line: &str) -> Json {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
    assert!(doc.get("ok").is_some(), "no ok flag in {line:?}");
    doc
}

fn error_code(doc: &Json) -> Option<String> {
    if doc.get("ok").unwrap().as_bool() == Some(true) {
        return None;
    }
    Some(
        doc.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string(),
    )
}

/// The full scripted session from the serve-smoke CI lane: every
/// command, one malformed and one over-deep request in the middle, and
/// the daemon answering everything in order without dying.
#[test]
fn golden_scripted_session_covers_every_command() {
    let deep = "[".repeat(4096);
    let script = format!(
        concat!(
            r#"{{"id":1,"cmd":"load_graph","n":12,"family":"clique","seed":3}}"#,
            "\n",
            r#"{{"id":2,"cmd":"solve","beta":1,"eps":0.5,"seed":7,"pairs":true}}"#,
            "\n",
            "this is not json\n",
            "{deep}\n",
            r#"{{"id":3,"cmd":"solve","beta":1,"eps":0.5,"seed":7,"pairs":true}}"#,
            "\n",
            r#"{{"id":4,"cmd":"update","ops":[["delete",0,1],["insert",0,1]],"beta":1,"eps":0.5}}"#,
            "\n",
            r#"{{"id":5,"cmd":"query","what":"status"}}"#,
            "\n",
            r#"{{"id":6,"cmd":"query","what":"pairs"}}"#,
            "\n",
            r#"{{"id":7,"cmd":"metrics"}}"#,
            "\n",
            r#"{{"id":8,"cmd":"shutdown"}}"#,
            "\n",
        ),
        deep = deep
    );
    let (lines, summary) = run_script(&script, &ServeConfig::default());
    assert_eq!(lines.len(), 10, "one response per line: {lines:#?}");
    let docs: Vec<Json> = lines.iter().map(|l| parse_response(l)).collect();

    // id 1: load_graph ok with the clique's shape.
    assert_eq!(error_code(&docs[0]), None);
    let r = docs[0].get("result").unwrap();
    assert_eq!(r.get("n").unwrap().as_u64(), Some(12));
    assert_eq!(r.get("m").unwrap().as_u64(), Some(66));

    // id 2: cold solve; a clique always has a perfect matching.
    assert_eq!(error_code(&docs[1]), None);
    let cold = docs[1].get("result").unwrap();
    assert_eq!(cold.get("matching_size").unwrap().as_u64(), Some(6));
    assert_eq!(cold.get("warm").unwrap().as_bool(), Some(false));

    // The malformed line: parse error, null id, daemon stays up.
    assert_eq!(error_code(&docs[2]).as_deref(), Some("parse"));
    assert_eq!(docs[2].get("id"), Some(&Json::Null));

    // The over-deep line: the depth cap fires, not a stack overflow.
    assert_eq!(error_code(&docs[3]).as_deref(), Some("too_deep"));

    // id 3: warm solve, byte-identical result to the cold one.
    assert_eq!(error_code(&docs[4]), None);
    let warm = docs[4].get("result").unwrap();
    assert_eq!(warm.get("warm").unwrap().as_bool(), Some(true));
    assert_eq!(warm.get("pairs"), cold.get("pairs"));
    assert_eq!(warm.get("matching_size"), cold.get("matching_size"));

    // id 4: dynamic update applied both ops.
    assert_eq!(error_code(&docs[5]), None);
    assert_eq!(
        docs[5]
            .get("result")
            .unwrap()
            .get("applied")
            .unwrap()
            .as_u64(),
        Some(2)
    );

    // id 5/6: queries see the dynamic graph (same edge count: one
    // delete + one re-insert).
    assert_eq!(error_code(&docs[6]), None);
    let status = docs[6].get("result").unwrap();
    assert_eq!(status.get("m").unwrap().as_u64(), Some(66));
    assert_eq!(status.get("dynamic").unwrap().as_bool(), Some(true));
    assert_eq!(error_code(&docs[7]), None);
    assert!(docs[7].get("result").unwrap().get("pairs").is_some());

    // id 7: metrics carries per-command counts and the wire errors the
    // two bad lines produced.
    assert_eq!(error_code(&docs[8]), None);
    let metrics = docs[8].get("result").unwrap();
    let commands = metrics.get("commands").unwrap();
    assert_eq!(commands.get("solve").unwrap().as_u64(), Some(2));
    assert_eq!(metrics.get("wire_errors").unwrap().as_u64(), Some(2));

    assert_eq!(summary.requests, 8, "engine-handled requests");
    assert_eq!(summary.wire_errors, 2);
    assert!(!summary.daemon_shutdown);
    // The shutdown ack is the last line.
    assert_eq!(
        lines.last().unwrap(),
        r#"{"id":8,"ok":true,"result":{"stopping":"session"}}"#
    );
}

/// Requests arriving faster than the worker drains them are answered
/// `overloaded` — the engine never sees them, and the session survives.
#[test]
fn overload_answers_excess_requests_and_stays_up() {
    // A deliberately slow first command (a ~350k-edge clique solve)
    // pins the worker while the reader floods a tiny queue.
    let mut script = String::new();
    script.push_str(r#"{"id":1,"cmd":"load_graph","n":840,"family":"clique"}"#);
    script.push('\n');
    script.push_str(r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5}"#);
    script.push('\n');
    let flood = 300u64;
    for i in 0..flood {
        script.push_str(&format!(r#"{{"id":{},"cmd":"query"}}"#, 100 + i));
        script.push('\n');
    }
    let cfg = ServeConfig {
        queue_cap: 4,
        ..ServeConfig::default()
    };
    let (lines, summary) = run_script(&script, &cfg);
    assert_eq!(
        lines.len(),
        2 + flood as usize,
        "every request got a response"
    );
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    for line in &lines {
        let doc = parse_response(line);
        match error_code(&doc).as_deref() {
            None => ok += 1,
            Some("overloaded") => overloaded += 1,
            Some(other) => panic!("unexpected error {other} in {line}"),
        }
    }
    assert!(overloaded > 0, "the flood must trip admission control");
    assert_eq!(ok + overloaded, 2 + flood);
    assert_eq!(summary.overloaded, overloaded);
    // Overloaded responses still echo the request id.
    let dropped = lines
        .iter()
        .map(|l| parse_response(l))
        .find(|d| error_code(d).as_deref() == Some("overloaded"))
        .unwrap();
    assert!(dropped.get("id").unwrap().as_u64().unwrap() >= 100);
}

/// A line over the byte cap is rejected as `too_large` without breaking
/// the framing: the next request still parses and runs.
#[test]
fn oversized_line_is_skipped_cleanly() {
    let mut script = String::new();
    script.push_str(r#"{"id":1,"cmd":"load_graph","n":4,"edges":[[0,1]]}"#);
    script.push('\n');
    script.push_str(&"x".repeat(MAX_REQUEST_BYTES + 100));
    script.push('\n');
    script.push_str(r#"{"id":2,"cmd":"query"}"#);
    script.push('\n');
    let (lines, summary) = run_script(&script, &ServeConfig::default());
    assert_eq!(lines.len(), 3);
    // The `too_large` reply comes from the reader thread and the two ok
    // replies from the worker; their relative order is not guaranteed
    // (responses interleave through the shared writer by design), so
    // match responses by id rather than by position.
    let docs: Vec<Json> = lines.iter().map(|l| parse_response(l)).collect();
    let too_large = docs
        .iter()
        .find(|d| error_code(d).as_deref() == Some("too_large"))
        .expect("the oversized line was rejected");
    assert_eq!(too_large.get("id"), Some(&Json::Null));
    let status = docs
        .iter()
        .find(|d| d.get("id").unwrap().as_u64() == Some(2))
        .expect("the request after the oversized line still ran");
    assert_eq!(error_code(status), None);
    assert_eq!(
        status
            .get("result")
            .unwrap()
            .get("loaded")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(summary.wire_errors, 1);
}

/// Hostile-but-well-formed parameters: eps outside the theorem's
/// precondition, beta/eps pairs whose derived Δ explodes, and family
/// specs describing astronomically large graphs. Every one must come
/// back as a typed error — never a panic or an allocation storm — and
/// the session must keep answering afterwards.
#[test]
fn hostile_parameters_are_rejected_and_the_session_survives() {
    let script = concat!(
        r#"{"id":1,"cmd":"load_graph","n":8,"family":"clique"}"#,
        "\n",
        // eps = 1 used to reach SparsifierParams' assert and panic the worker.
        r#"{"id":2,"cmd":"solve","eps":1}"#,
        "\n",
        r#"{"id":3,"cmd":"update","ops":[["insert",0,1]],"eps":1}"#,
        "\n",
        // Saturating-delta probe: huge beta, subnormal eps.
        r#"{"id":4,"cmd":"solve","beta":4000000000,"eps":1e-300}"#,
        "\n",
        // Memory-DoS probe: a million-vertex clique is ~5e11 edges.
        r#"{"id":5,"cmd":"load_graph","n":1000000,"family":"clique"}"#,
        "\n",
        // Generator params that used to hit asserts inside family builders.
        r#"{"id":6,"cmd":"load_graph","n":2,"family":"cycle"}"#,
        "\n",
        r#"{"id":7,"cmd":"solve","beta":1,"eps":0.5}"#,
        "\n",
        r#"{"id":8,"cmd":"shutdown"}"#,
        "\n",
    );
    let (lines, summary) = run_script(script, &ServeConfig::default());
    assert_eq!(lines.len(), 8, "every request answered: {lines:#?}");
    let docs: Vec<Json> = lines.iter().map(|l| parse_response(l)).collect();
    assert_eq!(error_code(&docs[0]), None);
    for (i, id) in [(1usize, 2u64), (2, 3), (3, 4)] {
        assert_eq!(
            error_code(&docs[i]).as_deref(),
            Some("bad_request"),
            "id {id}"
        );
        assert_eq!(docs[i].get("id").unwrap().as_u64(), Some(id));
    }
    assert_eq!(error_code(&docs[4]).as_deref(), Some("too_large"));
    assert_eq!(error_code(&docs[5]).as_deref(), Some("bad_request"));
    // The session is still alive and solving on the original graph.
    assert_eq!(error_code(&docs[6]), None);
    assert_eq!(
        docs[6]
            .get("result")
            .unwrap()
            .get("matching_size")
            .unwrap()
            .as_u64(),
        Some(4)
    );
    assert_eq!(error_code(&docs[7]), None);
    // ids 2–4 die at the parse layer (wire errors); 1, 5–8 reach the engine.
    assert_eq!(summary.requests, 5);
    assert_eq!(summary.wire_errors, 3);
}

/// A reader that yields one good request, then fails with a transport
/// error (as a reset connection would) instead of clean EOF.
struct ResettingReader {
    data: Cursor<&'static [u8]>,
}

impl std::io::Read for ResettingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.data.read(buf)?;
        if n > 0 {
            return Ok(n);
        }
        Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset))
    }
}

/// A mid-session transport error must end the session with that error —
/// not deadlock the reader on a worker that never saw eof (which in
/// unix-socket mode permanently leaked a session slot).
#[test]
fn transport_error_ends_the_session_instead_of_deadlocking() {
    let reader = ResettingReader {
        data: Cursor::new(b"{\"id\":1,\"cmd\":\"query\"}\n"),
    };
    let mut out: Vec<u8> = Vec::new();
    let err = run_session(
        BufReader::new(reader),
        &mut out,
        &ServeConfig::default(),
        None,
    )
    .expect_err("the transport error must surface");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    // The request that made it through before the reset was answered.
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "{lines:#?}");
    let doc = parse_response(lines[0]);
    assert_eq!(error_code(&doc), None);
    assert_eq!(doc.get("id").unwrap().as_u64(), Some(1));
}

/// Unix-socket mode: two concurrent sessions with independent resident
/// state, then a daemon-scope shutdown that stops the listener.
#[test]
fn unix_socket_sessions_are_isolated_and_daemon_shutdown_stops_the_listener() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("serve.sock");
    std::fs::remove_file(&sock).ok();
    let cfg = ServeConfig::default();
    let server = {
        let sock = sock.clone();
        std::thread::spawn(move || serve_unix(&sock, &cfg))
    };
    // Wait for the socket to come up.
    let mut tries = 0;
    let connect = |tries: &mut u32| loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(e) => {
                *tries += 1;
                assert!(*tries < 500, "socket never came up: {e}");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    };
    let ask = |stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str| -> Json {
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse_response(response.trim_end())
    };

    let mut a = connect(&mut tries);
    let mut a_reader = BufReader::new(a.try_clone().unwrap());
    let mut b = connect(&mut tries);
    let mut b_reader = BufReader::new(b.try_clone().unwrap());

    // Session A loads a path, session B loads nothing: B's status must
    // not see A's graph.
    let r = ask(
        &mut a,
        &mut a_reader,
        r#"{"id":1,"cmd":"load_graph","n":10,"family":"path"}"#,
    );
    assert_eq!(error_code(&r), None);
    let r = ask(&mut b, &mut b_reader, r#"{"id":1,"cmd":"query"}"#);
    assert_eq!(
        r.get("result").unwrap().get("loaded").unwrap().as_bool(),
        Some(false),
        "sessions must not share engine state"
    );
    let r = ask(
        &mut a,
        &mut a_reader,
        r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5}"#,
    );
    assert_eq!(
        r.get("result")
            .unwrap()
            .get("matching_size")
            .unwrap()
            .as_u64(),
        Some(5)
    );

    // Session-scope shutdown ends only session A.
    let r = ask(&mut a, &mut a_reader, r#"{"id":3,"cmd":"shutdown"}"#);
    assert_eq!(error_code(&r), None);
    // Daemon-scope shutdown from B stops the listener.
    let r = ask(
        &mut b,
        &mut b_reader,
        r#"{"id":2,"cmd":"shutdown","scope":"daemon"}"#,
    );
    assert_eq!(error_code(&r), None);
    server.join().unwrap().unwrap();
    assert!(!sock.exists(), "socket file removed on daemon shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// Session-scope `shutdown` drains gracefully: the in-flight request
/// completes, the shutdown is acked, and everything still queued behind
/// it is answered with a typed `shutting_down` — never silently dropped
/// and never executed.
#[test]
fn session_shutdown_sheds_queued_requests_with_shutting_down() {
    // The slow clique solve pins the worker while the reader queues the
    // shutdown and a tail of queries behind it.
    let mut script = String::new();
    script.push_str(r#"{"id":1,"cmd":"load_graph","n":840,"family":"clique"}"#);
    script.push('\n');
    script.push_str(r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5}"#);
    script.push('\n');
    script.push_str(r#"{"id":3,"cmd":"shutdown"}"#);
    script.push('\n');
    let tail = 10u64;
    for i in 0..tail {
        script.push_str(&format!(r#"{{"id":{},"cmd":"query"}}"#, 100 + i));
        script.push('\n');
    }
    let cfg = ServeConfig {
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let (lines, summary) = run_script(&script, &cfg);
    assert_eq!(lines.len(), 3 + tail as usize, "{lines:#?}");
    let docs: Vec<Json> = lines.iter().map(|l| parse_response(l)).collect();
    // In-flight work completed normally before the stop.
    assert_eq!(error_code(&docs[0]), None);
    assert_eq!(error_code(&docs[1]), None);
    assert_eq!(
        docs[1]
            .get("result")
            .unwrap()
            .get("matching_size")
            .unwrap()
            .as_u64(),
        Some(420)
    );
    // The shutdown ack, then one typed shed per queued request, each
    // still echoing its id for correlation.
    assert_eq!(error_code(&docs[2]), None);
    for doc in &docs[3..] {
        assert_eq!(error_code(doc).as_deref(), Some("shutting_down"));
        assert!(doc.get("id").unwrap().as_u64().unwrap() >= 100);
    }
    assert_eq!(summary.requests, 3, "shed requests never reach the engine");
    assert!(!summary.daemon_shutdown);
}

/// With a deadline configured, a runaway execution answers `timeout`
/// (result discarded) and the stale backlog behind it is shed as
/// `timeout` at dequeue instead of executing against a client that has
/// already given up.
#[test]
fn deadline_sheds_stale_queue_and_discards_late_results() {
    let mut script = String::new();
    script.push_str(r#"{"id":1,"cmd":"load_graph","n":840,"family":"clique"}"#);
    script.push('\n');
    script.push_str(r#"{"id":2,"cmd":"solve","beta":1,"eps":0.5}"#);
    script.push('\n');
    let tail = 10u64;
    for i in 0..tail {
        script.push_str(&format!(r#"{{"id":{},"cmd":"query"}}"#, 100 + i));
        script.push('\n');
    }
    let cfg = ServeConfig {
        deadline_ms: 10,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let (lines, _) = run_script(&script, &cfg);
    assert_eq!(lines.len(), 2 + tail as usize, "{lines:#?}");
    let docs: Vec<Json> = lines.iter().map(|l| parse_response(l)).collect();
    // The load may beat the deadline or not depending on the machine;
    // everything after it is pinned behind the big solve and must miss.
    for (i, doc) in docs.iter().enumerate().skip(1) {
        assert_eq!(
            error_code(doc).as_deref(),
            Some("timeout"),
            "line {i}: {:?}",
            lines[i]
        );
    }
    // Shed responses still echo the request id.
    assert!(docs.last().unwrap().get("id").unwrap().as_u64().unwrap() >= 100);
}

/// `metrics` exposes the lifecycle observability fields: timeout and
/// eviction counters, the active-session gauge, and cumulative I/O
/// retries from streamed builds.
#[test]
fn metrics_reports_lifecycle_gauges() {
    let script = concat!(
        r#"{"id":1,"cmd":"metrics"}"#,
        "\n",
        r#"{"id":2,"cmd":"shutdown"}"#,
        "\n",
    );
    let (lines, _) = run_script(script, &ServeConfig::default());
    assert_eq!(lines.len(), 2);
    let doc = parse_response(&lines[0]);
    assert_eq!(error_code(&doc), None);
    let m = doc.get("result").unwrap();
    assert_eq!(m.get("requests_timed_out").unwrap().as_u64(), Some(0));
    assert_eq!(m.get("sessions_active").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("sessions_evicted").unwrap().as_u64(), Some(0));
    assert_eq!(m.get("io_retries").unwrap().as_u64(), Some(0));
}

/// At `max_sessions` saturation, a silent client — connected but never
/// having sent a line, not even `load_graph` — is evicted once it
/// crosses the idle threshold: it receives a typed `session_evicted`
/// notification, its slot admits the new connection, and the daemon's
/// metrics account for the eviction.
#[test]
fn idle_silent_session_is_evicted_to_admit_a_new_connection() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-evict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("serve.sock");
    std::fs::remove_file(&sock).ok();
    let cfg = ServeConfig {
        max_sessions: 1,
        idle_timeout_ms: 50,
        ..ServeConfig::default()
    };
    let server = {
        let sock = sock.clone();
        std::thread::spawn(move || serve_unix(&sock, &cfg))
    };
    let connect = || {
        let mut tries = 0;
        loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(e) => {
                    tries += 1;
                    assert!(tries < 500, "socket never came up: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
    };

    // The silent client: connects, sends nothing, idles past the
    // threshold while holding the daemon's only session slot.
    let silent = connect();
    let mut silent_reader = BufReader::new(silent.try_clone().unwrap());
    std::thread::sleep(std::time::Duration::from_millis(120));

    // The second connection must be admitted by evicting the idler, not
    // bounced with `overloaded`.
    let mut fresh = connect();
    let mut fresh_reader = BufReader::new(fresh.try_clone().unwrap());
    writeln!(fresh, r#"{{"id":1,"cmd":"query"}}"#).unwrap();
    let mut response = String::new();
    fresh_reader.read_line(&mut response).unwrap();
    let doc = parse_response(response.trim_end());
    assert_eq!(error_code(&doc), None, "new session admitted: {response}");

    // The evictee got the typed notification before its close.
    let mut notice = String::new();
    silent_reader.read_line(&mut notice).unwrap();
    let doc = parse_response(notice.trim_end());
    assert_eq!(error_code(&doc).as_deref(), Some("session_evicted"));

    // The daemon gauges saw it.
    writeln!(fresh, r#"{{"id":2,"cmd":"metrics"}}"#).unwrap();
    let mut response = String::new();
    fresh_reader.read_line(&mut response).unwrap();
    let doc = parse_response(response.trim_end());
    let m = doc.get("result").unwrap();
    assert_eq!(m.get("sessions_active").unwrap().as_u64(), Some(1));
    assert_eq!(m.get("sessions_evicted").unwrap().as_u64(), Some(1));

    writeln!(fresh, r#"{{"id":3,"cmd":"shutdown","scope":"daemon"}}"#).unwrap();
    let mut response = String::new();
    fresh_reader.read_line(&mut response).unwrap();
    assert_eq!(error_code(&parse_response(response.trim_end())), None);
    server.join().unwrap().unwrap();
    assert!(!sock.exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// Daemon-scope shutdown under load drains gracefully: the request
/// already executing in another session completes and is answered, the
/// requests queued behind it are shed with `shutting_down`, and
/// `serve_unix` returns Ok — i.e. the process exits 0 — within the
/// bounded drain window.
#[test]
fn daemon_shutdown_completes_in_flight_and_sheds_queued_across_sessions() {
    let dir = std::env::temp_dir().join(format!("sparsimatch-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("serve.sock");
    std::fs::remove_file(&sock).ok();
    let cfg = ServeConfig {
        queue_cap: 64,
        drain_ms: 60_000,
        ..ServeConfig::default()
    };
    let server = {
        let sock = sock.clone();
        std::thread::spawn(move || serve_unix(&sock, &cfg))
    };
    let connect = || {
        let mut tries = 0;
        loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(e) => {
                    tries += 1;
                    assert!(tries < 500, "socket never came up: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
    };

    // Session A: burst a slow generate-and-load (the request whose cost
    // scales with the input — the sparsified solve itself is near
    // input-size independent) plus a tail of queries, all unread, so
    // the load is in flight and the queries are queued when the
    // shutdown lands.
    let mut a = connect();
    let mut a_reader = BufReader::new(a.try_clone().unwrap());
    writeln!(
        a,
        r#"{{"id":1,"cmd":"load_graph","n":2000,"family":"clique"}}"#
    )
    .unwrap();
    let tail = 5u64;
    for i in 0..tail {
        writeln!(a, r#"{{"id":{},"cmd":"query"}}"#, 100 + i).unwrap();
    }
    // Give A's worker time to dequeue the load before the drain flag
    // goes up (shed decisions happen at dequeue, not admission).
    std::thread::sleep(std::time::Duration::from_millis(30));

    // Session B pulls the plug on the whole daemon.
    let mut b = connect();
    let mut b_reader = BufReader::new(b.try_clone().unwrap());
    writeln!(b, r#"{{"id":1,"cmd":"shutdown","scope":"daemon"}}"#).unwrap();
    let mut response = String::new();
    b_reader.read_line(&mut response).unwrap();
    assert_eq!(error_code(&parse_response(response.trim_end())), None);

    // A's in-flight load completes with a real answer; the queued tail
    // is shed with the typed drain error, ids intact.
    let mut response = String::new();
    a_reader.read_line(&mut response).unwrap();
    let doc = parse_response(response.trim_end());
    assert_eq!(
        error_code(&doc),
        None,
        "in-flight load completed: {response}"
    );
    assert_eq!(
        doc.get("result").unwrap().get("n").unwrap().as_u64(),
        Some(2000)
    );
    for _ in 0..tail {
        let mut response = String::new();
        a_reader.read_line(&mut response).unwrap();
        let doc = parse_response(response.trim_end());
        assert_eq!(error_code(&doc).as_deref(), Some("shutting_down"));
        assert!(doc.get("id").unwrap().as_u64().unwrap() >= 100);
    }

    // Bounded exit: the daemon comes down on its own, socket removed.
    server.join().unwrap().unwrap();
    assert!(!sock.exists());
    std::fs::remove_dir_all(&dir).ok();
}
