//! Offline stand-in for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build environment cannot reach crates.io, so the workspace
//! path-replaces the `rand` dependency with this crate. It provides:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`] with `random_range`,
//!   `random_bool`, and `random`,
//! - [`rngs::StdRng`]: a xoshiro256++ generator seeded through SplitMix64
//!   (NOT the upstream ChaCha12 — streams differ from upstream `rand`, but
//!   every consumer in this workspace only relies on determinism for a
//!   fixed seed, never on matching upstream byte streams),
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates) and
//!   [`seq::index::sample`] (partial Fisher–Yates, distinct indices).
//!
//! Uniform integer ranges use the widening-multiply method. Its modulo
//! bias is at most 2^-32 for the range sizes used here (all well below
//! 2^32), which is far below anything the statistical assertions in the
//! test suite can detect.

/// Core trait: a source of random `u64`s (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64, exactly
    /// one byte-stream per input value.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform integer in `[0, bound)` via widening multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn uniform_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * uniform_unit_f64(rng);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * uniform_unit_f64(rng)
    }
}

/// Types producible by [`Rng::random`] (stands in for sampling from
/// `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_unit_f64(rng)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value from a range; panics if the range is empty.
    #[inline]
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            uniform_unit_f64(self) < p
        }
    }

    /// A uniform value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — the byte stream differs from
    /// crates.io `rand`, but it is deterministic per seed, which is the
    /// only property the workspace relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0, 0, 0, 0] {
                // All-zero is xoshiro's fixed point; remap it.
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (mirrors `rand::seq`).

    use super::{uniform_below, RngCore};

    /// Shuffling for slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Distinct-index sampling (mirrors `rand::seq::index`).

        use super::super::{uniform_below, RngCore};

        /// A set of distinct sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate the indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly,
        /// by partial Fisher–Yates. Panics if `amount > length`, like
        /// upstream `rand`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&y));
            let z = rng.random_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn range_values_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let idx = sample(&mut rng, 30, 7);
            let v: Vec<usize> = idx.into_iter().collect();
            assert_eq!(v.len(), 7);
            let mut d = v.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 7, "duplicates in {v:?}");
            assert!(v.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.random_range(0usize..10);
        assert!(x < 10);
        let _: u64 = dyn_rng.random();
    }
}
