//! Retry-path parity property: for *arbitrary* graphs and *arbitrary*
//! recoverable I/O fault plans, the streamed build under retries is
//! byte-identical to the fault-free streamed build and the in-memory
//! build — chaos cannot change the sparsifier, only the work accounting.
//!
//! The accounting itself is pinned exactly: `edges_scanned` must equal
//! the fault-free `4m` plus two half-edges for every edge an *aborted*
//! attempt delivered before dying, and `io_retries` must equal the
//! number of aborted attempts — both derived independently here by
//! replaying the pure fault schedule, not read back from the build.

use proptest::prelude::*;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier_parallel;
use sparsimatch_core::stream_build::{
    build_sparsifier_streamed, build_sparsifier_streamed_with_retry, RetryPolicy,
};
use sparsimatch_graph::csr::from_edges;
use sparsimatch_graph::edge_stream::{
    FaultyEdgeSource, InjectedIoFault, IoFaultPlan, IoFaultRates,
};

const N: usize = 24;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..120)
}

fn arb_rates() -> impl Strategy<Value = IoFaultRates> {
    // Percent-valued rates: the local proptest shim has no f64 ranges.
    (0u32..90, 0u32..90, 0u32..90, 0u32..90).prop_map(
        |(eio, short_read, torn_line, header_mutation)| IoFaultRates {
            eio: eio as f64 / 100.0,
            short_read: short_read as f64 / 100.0,
            torn_line: torn_line as f64 / 100.0,
            header_mutation: header_mutation as f64 / 100.0,
        },
    )
}

/// Replay the pure fault schedule the way the two-pass build consumes
/// it: attempts burn off the shared counter until a pass sees a clean
/// one. Returns `(io_retries, edges_scanned)` the build must report.
fn expected_accounting(plan: &IoFaultPlan, m: usize) -> (u64, u64) {
    let mut retries = 0u64;
    let mut half_edges = 0u64;
    let mut attempt = 0u64;
    for _pass in 0..2 {
        loop {
            let fault = plan.fault_for_attempt(attempt, m);
            attempt += 1;
            match fault {
                None => {
                    half_edges += 2 * m as u64;
                    break;
                }
                Some(f) => {
                    retries += 1;
                    let delivered = match f {
                        InjectedIoFault::Eio { after }
                        | InjectedIoFault::ShortRead { after }
                        | InjectedIoFault::TornLine { after } => after,
                        InjectedIoFault::HeaderMutation => 0,
                    };
                    half_edges += 2 * delivered as u64;
                }
            }
        }
    }
    (retries, half_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recoverable_faults_cannot_change_the_build(
        edges in arb_edges(),
        rates in arb_rates(),
        plan_seed in any::<u64>(),
        horizon in 1u64..4,
        delta in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = from_edges(N, edges);
        let p = SparsifierParams::with_delta(2, 0.5, delta);
        // `horizon` faulted attempts at most, `horizon + 1` attempts per
        // pass: a clean attempt is guaranteed inside the budget, so the
        // plan is recoverable by construction.
        let plan = IoFaultPlan::new(plan_seed, rates).with_horizon(horizon);
        let policy = RetryPolicy::attempts(horizon as u32 + 1);

        let (clean, clean_report) =
            build_sparsifier_streamed(&mut g.clone(), &p, seed).unwrap();
        let mut faulty = FaultyEdgeSource::new(g.clone(), plan);
        let (recovered, report) =
            build_sparsifier_streamed_with_retry(&mut faulty, &p, seed, &policy).unwrap();
        let mem = build_sparsifier_parallel(&g, &p, seed, 1).unwrap();

        prop_assert_eq!(&recovered.graph, &clean.graph, "recovered vs fault-free streamed");
        prop_assert_eq!(&recovered.graph, &mem.graph, "recovered vs in-memory");
        prop_assert_eq!(recovered.stats.marks_placed, clean.stats.marks_placed);
        prop_assert_eq!(recovered.stats.edges, clean.stats.edges);

        // Fault-free accounting is exactly 4m; the faulted run is that
        // plus the aborted prefixes, both derived from the pure schedule.
        let m = g.num_edges();
        prop_assert_eq!(clean_report.edges_scanned, 4 * m as u64);
        prop_assert_eq!(clean_report.io_retries, 0);
        let (want_retries, want_scanned) = expected_accounting(&plan, m);
        prop_assert_eq!(report.io_retries, want_retries);
        prop_assert_eq!(report.edges_scanned, want_scanned);
        prop_assert_eq!(faulty.stats().total(), want_retries);

        // Everything the reports share besides work accounting agrees.
        prop_assert_eq!(report.peak_resident_bytes, clean_report.peak_resident_bytes);
        prop_assert_eq!(report.sparsifier_bytes, clean_report.sparsifier_bytes);
        prop_assert_eq!(report.probes, clean_report.probes);
    }
}
