//! Property-based tests for the sparsifier core.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sampler::PosArraySampler;
use sparsimatch_core::sparsifier::build_sparsifier;
use sparsimatch_graph::analysis::independence::neighborhood_independence_exact;
use sparsimatch_graph::csr::from_edges;
use sparsimatch_matching::blossom::maximum_matching;

const N: usize = 20;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampler_draws_distinct_in_range(deg in 1usize..200, k in 0usize..64, seed in any::<u64>()) {
        let mut sampler = PosArraySampler::new(200);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        sampler.sample_indices(deg, k, &mut rng, &mut out);
        prop_assert_eq!(out.len(), k.min(deg));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.len(), "duplicate indices");
        prop_assert!(out.iter().all(|&i| (i as usize) < deg));
    }

    #[test]
    fn sparsifier_is_subgraph_and_within_bounds(
        edges in arb_edges(),
        delta in 1usize..6,
        seed in any::<u64>(),
    ) {
        let g = from_edges(N, edges);
        let mut rng = StdRng::seed_from_u64(seed);
        let beta = neighborhood_independence_exact(&g).max(1);
        let params = SparsifierParams::with_delta(beta, 0.5, delta);
        let s = build_sparsifier(&g, &params, &mut rng);
        // Subgraph.
        for (_, u, v) in s.graph.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Naive size bound (deterministic).
        prop_assert!(s.stats.edges <= params.naive_size_bound(N));
        // Observation 2.10 with the exact beta (deterministic).
        let mcm = maximum_matching(&g).len();
        if mcm > 0 {
            prop_assert!(
                s.stats.edges <= params.size_bound(mcm),
                "{} > 2*{}*({}+{})", s.stats.edges, mcm, params.mark_cap(), beta
            );
        }
        // Per-vertex mark arithmetic: marks_placed = sum of min(deg, cap)
        // over low-degree vertices + delta over high-degree ones.
        let mut expect = 0usize;
        for v in 0..N {
            let d = g.degree(sparsimatch_graph::ids::VertexId::new(v));
            expect += if d <= params.mark_cap() { d } else { params.delta };
        }
        prop_assert_eq!(s.stats.marks_placed, expect);
    }

    #[test]
    fn matching_on_sparsifier_is_matching_on_graph(
        edges in arb_edges(),
        seed in any::<u64>(),
    ) {
        let g = from_edges(N, edges);
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SparsifierParams::with_delta(2, 0.5, 3);
        let s = build_sparsifier(&g, &params, &mut rng);
        let m = maximum_matching(&s.graph);
        prop_assert!(m.is_valid_for(&g));
        prop_assert!(m.len() <= maximum_matching(&g).len());
    }

    #[test]
    fn params_monotone(beta in 1usize..20, num in 1u32..9) {
        let eps = num as f64 / 10.0;
        let p = SparsifierParams::paper(beta, eps);
        prop_assert!(p.delta >= SparsifierParams::practical(beta, eps).delta);
        prop_assert!(SparsifierParams::paper(beta + 1, eps).delta > p.delta);
        if eps > 0.15 {
            prop_assert!(SparsifierParams::paper(beta, eps - 0.1).delta > p.delta);
        }
        prop_assert_eq!(p.mark_cap(), 2 * p.delta);
        prop_assert_eq!(p.arboricity_bound(), 4 * p.delta);
    }
}
