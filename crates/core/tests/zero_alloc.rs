//! Steady-state zero-allocation proof for the scratch pipeline.
//!
//! Installs the `alloc-count` counting global allocator and asserts that
//! once a [`PipelineScratch`] has been warmed by one call on a given
//! input, every subsequent call on that input performs **zero** heap
//! allocations on the sequential path — for each certified benchmark
//! family at its default parameters. Compile and run with
//! `cargo test -p sparsimatch-core --features alloc-count`.
#![cfg(feature = "alloc-count")]

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::{
    approx_mcm_via_sparsifier, approx_mcm_via_sparsifier_with_scratch,
};
use sparsimatch_core::scratch::PipelineScratch;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::generators::{bipartite_gnp, clique, clique_union, CliqueUnionConfig};
use sparsimatch_obs::alloc::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The certified benchmark families (quick-scale sizes) at their default
/// parameters — the same shapes `bench_baseline` measures.
fn families() -> Vec<(&'static str, CsrGraph, SparsifierParams)> {
    let mut rng = StdRng::seed_from_u64(0xBE);
    vec![
        ("clique", clique(300), SparsifierParams::practical(1, 0.3)),
        (
            "clique-union",
            clique_union(
                CliqueUnionConfig {
                    n: 5_000,
                    diversity: 2,
                    clique_size: 50,
                },
                &mut rng,
            ),
            SparsifierParams::practical(2, 0.3),
        ),
        (
            "bipartite",
            bipartite_gnp(2_000, 2_000, 10.0 / 2_000.0, &mut rng),
            SparsifierParams::practical(4, 0.3),
        ),
    ]
}

#[test]
fn warm_scratch_repeat_solves_allocate_nothing() {
    for (name, g, params) in families() {
        let mut scratch = PipelineScratch::new();
        for seed in [7u64, 8] {
            let cold = approx_mcm_via_sparsifier(&g, &params, seed, 1).unwrap();
            // Warm-up: the first call on this (input, seed) may grow
            // buffers; everything after it must not.
            approx_mcm_via_sparsifier_with_scratch(&g, &params, seed, 1, &mut scratch).unwrap();
            for rep in 0..3 {
                let before = alloc::thread_totals();
                let warm =
                    approx_mcm_via_sparsifier_with_scratch(&g, &params, seed, 1, &mut scratch)
                        .unwrap();
                let after = alloc::thread_totals();
                let identical = warm.matching == cold.matching;
                assert_eq!(
                    after.count,
                    before.count,
                    "{name} seed {seed} rep {rep}: warm scratch call allocated \
                     ({} bytes in {} calls)",
                    after.bytes - before.bytes,
                    after.count - before.count,
                );
                assert_eq!(after.bytes, before.bytes, "{name} seed {seed} rep {rep}");
                assert!(
                    identical,
                    "{name} seed {seed} rep {rep}: warm output diverged from cold"
                );
            }
        }
        assert!(
            scratch.high_water_bytes() > 0,
            "{name}: no footprint recorded"
        );
    }
}

#[test]
fn allocator_counters_are_live() {
    // Guard against a silently uninstalled allocator: an explicit boxed
    // allocation must move both counters.
    let before = alloc::thread_totals();
    let v: Vec<u64> = Vec::with_capacity(1024);
    let after = alloc::thread_totals();
    drop(v);
    assert!(after.count > before.count, "allocation calls not counted");
    assert!(
        after.bytes >= before.bytes + 8 * 1024,
        "allocation bytes not counted"
    );
}
