//! End-to-end work-accounting test: the sequential sparsifier construction
//! stays within the Theorem 3.1 `O(n·Δ)` probe budget on the clique family
//! (the worst case for adjacency probing: every vertex has degree `n-1`,
//! far above the `2Δ` low-degree threshold, so every vertex samples).
//!
//! The counters come from the [`sparsimatch_obs::WorkMeter`] wired through
//! `build_sparsifier_metered`, i.e. this exercises the same accounting the
//! CLI exports via `--metrics-json`.

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::sparsifier::build_sparsifier_metered;
use sparsimatch_graph::generators::clique;
use sparsimatch_obs::{keys, WorkMeter};

#[test]
fn sequential_build_meets_linear_probe_budget_on_cliques() {
    for &n in &[50usize, 100, 200, 400] {
        let g = clique(n);
        let params = SparsifierParams::with_delta(1, 0.5, 4);
        let delta = params.delta as u64;
        let mut rng = StdRng::seed_from_u64(7);
        let mut meter = WorkMeter::new();
        let s = build_sparsifier_metered(&g, &params, &mut rng, &mut meter);
        assert!(s.stats.edges > 0);

        let nu = n as u64;
        let degree = meter.get(keys::DEGREE_PROBES);
        let neighbor = meter.get(keys::NEIGHBOR_PROBES);
        let draws = meter.get(keys::RNG_DRAWS);
        let writes = meter.get(keys::OVERLAY_WRITES);

        // Theorem 3.1: the construction makes O(n·Δ) probes total. The
        // implementation's exact constants: 2 degree probes per vertex,
        // one adjacency read per placed mark (≤ mark_cap = 2Δ per vertex),
        // and at most Δ RNG draws / overlay writes per sampling vertex.
        assert!(
            degree + neighbor <= 4 * nu * delta,
            "n={n}: {degree}+{neighbor} probes exceed 4·n·Δ = {}",
            4 * nu * delta
        );
        assert!(
            draws <= nu * delta,
            "n={n}: {draws} RNG draws exceed n·Δ = {}",
            nu * delta
        );
        assert!(
            writes <= nu * delta,
            "n={n}: {writes} overlay writes exceed n·Δ"
        );
        // Aggregate work-unit budget: everything the meter saw is linear
        // in n·Δ, independent of m = Θ(n²) clique edges.
        let total: u64 = meter.counters().map(|(_, v)| v).sum();
        assert!(
            total <= 8 * nu * delta,
            "n={n}: total metered work {total} exceeds 8·n·Δ"
        );
    }
}

#[test]
fn probe_budget_is_independent_of_edge_count() {
    // Doubling n quadruples the clique's edge count but at most doubles
    // (plus the sparsifier-edge counter's slack) the metered work.
    let params = SparsifierParams::with_delta(1, 0.5, 4);
    let mut work = Vec::new();
    for &n in &[100usize, 200] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut meter = WorkMeter::new();
        build_sparsifier_metered(&clique(n), &params, &mut rng, &mut meter);
        work.push(meter.counters().map(|(_, v)| v).sum::<u64>());
    }
    assert!(
        work[1] <= 3 * work[0],
        "work scaled superlinearly: {} -> {}",
        work[0],
        work[1]
    );
}
