//! Round-trip parity property: any graph, written to an edge-list file
//! and rebuilt through the out-of-core [`FileEdgeSource`] path, produces
//! the *same sparsifier CSR and the same matching* as the in-memory
//! pipeline at every accepted thread count — the streaming build is not
//! a second implementation allowed to drift, it is pinned to the
//! in-memory one bit for bit.

use proptest::prelude::*;
use sparsimatch_core::params::SparsifierParams;
use sparsimatch_core::pipeline::approx_mcm_via_sparsifier;
use sparsimatch_core::sparsifier::build_sparsifier_parallel;
use sparsimatch_core::stream_build::{approx_mcm_streamed, build_sparsifier_streamed};
use sparsimatch_graph::csr::from_edges;
use sparsimatch_graph::edge_stream::FileEdgeSource;
use sparsimatch_graph::io::write_edge_list_file;

const N: usize = 28;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..140)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn file_round_trip_matches_in_memory_at_all_thread_counts(
        edges in arb_edges(),
        delta in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = from_edges(N, edges);
        let dir = std::env::temp_dir().join("sparsimatch-prop-stream-build");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{}.el", std::process::id()));
        write_edge_list_file(&g, &path).unwrap();
        let p = SparsifierParams::with_delta(2, 0.5, delta);

        let mut src = FileEdgeSource::open(&path).unwrap();
        let (streamed, report) = build_sparsifier_streamed(&mut src, &p, seed).unwrap();
        let (streamed_pipe, _) = approx_mcm_streamed(&mut src, &p, seed).unwrap();
        std::fs::remove_file(&path).ok();

        for threads in [1usize, 2, 4] {
            let mem = build_sparsifier_parallel(&g, &p, seed, threads).unwrap();
            prop_assert_eq!(
                &streamed.graph, &mem.graph,
                "sparsifier CSR diverged at {} threads", threads
            );
            prop_assert_eq!(streamed.stats.marks_placed, mem.stats.marks_placed);
            prop_assert_eq!(streamed.stats.edges, mem.stats.edges);

            let mem_pipe = approx_mcm_via_sparsifier(&g, &p, seed, threads).unwrap();
            prop_assert_eq!(
                &streamed_pipe.matching, &mem_pipe.matching,
                "matching diverged at {} threads", threads
            );
            prop_assert_eq!(streamed_pipe.probes, mem_pipe.probes);
        }
        // The report's invariants hold on arbitrary inputs, not just the
        // curated bench families.
        prop_assert_eq!(report.sparsifier_bytes, streamed.graph.memory_bytes());
        prop_assert!(report.peak_resident_bytes >= report.sparsifier_bytes);
        prop_assert_eq!(report.edges_scanned, 4 * g.num_edges() as u64);
    }
}
