//! Out-of-core sparsifier construction: build `G_Δ` from an edge stream
//! in O(n + |E(G_Δ)|) resident memory, byte-identical to the in-memory
//! build.
//!
//! Theorem 3.1 promises the sparsifier in time linear in the *output*;
//! this module delivers the matching *space* bound. The parent graph is
//! never materialized — only a [`EdgeStreamSource`] is needed, and the
//! whole construction keeps O(n) per-vertex state plus the kept edges.
//!
//! The trick is that the marking scheme is replayable from degrees
//! alone. Each vertex `v` samples with its own RNG seeded as
//! `seed ^ (v·0x9E3779B97F4A7C15)` — exactly the per-vertex streams of
//! the in-memory marking path (`sparsifier::mark_edges_parallel`) — and
//! [`PosArraySampler::sample_indices`] consumes randomness as a function
//! of `deg(v)` only. So:
//!
//! 1. **Pass 1** counts degrees (8 bytes → 4 bytes per vertex of state).
//! 2. Between passes, every vertex's marked *adjacency positions* are
//!    sampled from its degree and sorted — low-degree vertices
//!    (`deg ≤ 2Δ`) just set a keep-all bit. Total position storage is
//!    O(marks placed) = O(|E(G_Δ)|).
//! 3. **Pass 2** replays the stream with per-vertex arrival counters.
//!    In a lex-sorted stream the half-edges incident to `w` arrive in
//!    `w`'s sorted-adjacency order, so the arrival counter *is* the
//!    adjacency index — an edge is kept iff either endpoint's sorted
//!    position set contains its arrival position (two cursor probes).
//! 4. Kept edges arrive lex-sorted and feed
//!    [`sparsimatch_graph::csr::from_sorted_edges`] directly, which is
//!    the same layout the in-memory path runs — the resulting CSR is
//!    byte-identical to `from_marked_edges(parent, sorted_ids, 1)`
//!    (pinned by differential test and a check-harness oracle).
//!
//! Resident-memory accounting is analytic — the maximum over the phase
//! working sets of the buffers this module owns (constant-size I/O
//! buffers excluded) — so reports are machine- and allocator-independent.

use crate::params::SparsifierParams;
use crate::pipeline::{approx_mcm_on_sparsifier, stage_eps, PipelineResult};
use crate::sampler::PosArraySampler;
use crate::sparsifier::{Sparsifier, SparsifierStats};
use rand::SeedableRng;
use sparsimatch_graph::adjacency::ProbeCounts;
use sparsimatch_graph::bitset::BitSet;
use sparsimatch_graph::csr::{from_sorted_edges, CsrGraph};
use sparsimatch_graph::edge_stream::{EdgeStreamSource, IoFaultStats};
use sparsimatch_graph::io::ReadError;
use sparsimatch_obs::{keys, WorkMeter};
use std::time::Duration;

/// Delay schedule between retry attempts of a failed stream pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backoff {
    /// Retry immediately — right for tests and local disks.
    #[default]
    None,
    /// Sleep a fixed duration before every retry.
    Fixed(Duration),
    /// Sleep `base · 2^(attempt−1)`, capped at `cap`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Upper bound on any single delay.
        cap: Duration,
    },
}

impl Backoff {
    /// Delay before retry number `attempt` (1-based), `None` for no wait.
    fn delay(&self, attempt: u32) -> Option<Duration> {
        match *self {
            Backoff::None => None,
            Backoff::Fixed(d) => Some(d),
            Backoff::Exponential { base, cap } => {
                let shift = attempt.saturating_sub(1).min(16);
                Some(base.saturating_mul(1u32 << shift).min(cap))
            }
        }
    }
}

/// How often a failed stream pass may be re-run from scratch, and how
/// long to wait between attempts.
///
/// Restarting a pass is safe because the build keeps no state a restart
/// cannot reset: pass 1 is a pure degree count, and pass 2's sampling
/// decisions replay bit-for-bit from the per-vertex seeded `pos_v`
/// samplers. A build that succeeds after any number of restarts is
/// therefore byte-identical to a fault-free build (pinned by proptest
/// and the `chaos-stream` check oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per pass, counting the first (≥ 1).
    pub max_attempts: u32,
    /// Wait applied between consecutive attempts of the same pass.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// No retries: the first failure of either pass is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::None,
        }
    }

    /// Up to `max_attempts` attempts per pass with no backoff wait.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        assert!(max_attempts >= 1, "a pass always gets one attempt");
        RetryPolicy {
            max_attempts,
            backoff: Backoff::None,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Typed failure of the retrying streamed build: the error is only
/// surfaced after the [`RetryPolicy`] budget is spent, so a caller
/// seeing this knows every allowed attempt of the failing pass was made.
#[derive(Debug)]
pub enum StreamBuildError {
    /// One pass failed on every allowed attempt.
    RetriesExhausted {
        /// Which pass (1 = degree count, 2 = arrival filter).
        pass: u8,
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
        /// The error the final attempt died with.
        last: ReadError,
    },
}

impl std::fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBuildError::RetriesExhausted {
                pass,
                attempts,
                last,
            } => write!(
                f,
                "stream pass {pass} failed after {attempts} attempt(s): {last}"
            ),
        }
    }
}

impl std::error::Error for StreamBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamBuildError::RetriesExhausted { last, .. } => Some(last),
        }
    }
}

/// Mirror a [`IoFaultStats`] record into the unified [`WorkMeter`]
/// accounting (the `io.faults.*` keys), the same way distsim's
/// `FaultStats::mirror_into` reports network faults.
pub fn mirror_io_faults(stats: &IoFaultStats, meter: &mut WorkMeter) {
    meter.add(keys::IO_FAULTS_EIO, stats.eio);
    meter.add(keys::IO_FAULTS_SHORT_READS, stats.short_reads);
    meter.add(keys::IO_FAULTS_TORN_LINES, stats.torn_lines);
    meter.add(keys::IO_FAULTS_HEADER_MUTATIONS, stats.header_mutations);
}

/// Run one pass body under the retry budget. The body resets whatever
/// per-pass state it owns, runs one full scan, and reports the
/// half-edges it visited (charged to `edges_scanned` even when the scan
/// aborts — the work was done, so the accounting keeps it).
fn run_pass<S, F>(
    src: &mut S,
    pass: u8,
    policy: &RetryPolicy,
    edges_scanned: &mut u64,
    retries: &mut u64,
    mut body: F,
) -> Result<(), StreamBuildError>
where
    S: EdgeStreamSource,
    F: FnMut(&mut S) -> (u64, Result<(), ReadError>),
{
    let mut attempt = 0u32;
    loop {
        let (half_edges, result) = body(src);
        *edges_scanned += half_edges;
        match result {
            Ok(()) => return Ok(()),
            Err(e) => {
                attempt += 1;
                if attempt >= policy.max_attempts {
                    return Err(StreamBuildError::RetriesExhausted {
                        pass,
                        attempts: attempt,
                        last: e,
                    });
                }
                *retries += 1;
                if let Some(d) = policy.backoff.delay(attempt) {
                    std::thread::sleep(d);
                }
            }
        }
    }
}

/// What the out-of-core build measured, reported in the units the huge
/// bench tier commits to `BENCH_pipeline.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamBuildReport {
    /// High-water bytes of build state resident at any phase (degree and
    /// cursor arrays, sampler overlay, position sets, kept-edge buffer,
    /// CSR layout) — analytic, excluding constant-size I/O buffers. The
    /// headline claim is `peak_resident_bytes < graph_bytes`.
    pub peak_resident_bytes: usize,
    /// What materializing the parent graph would cost
    /// ([`CsrGraph::projected_memory_bytes`]) — the resident memory this
    /// build avoids.
    pub graph_bytes: usize,
    /// [`CsrGraph::memory_bytes`] of the built sparsifier.
    pub sparsifier_bytes: usize,
    /// Analytic probe counts, same convention as the in-memory pipeline:
    /// two degree probes per vertex, one neighbor probe per mark placed.
    pub probes: ProbeCounts,
    /// Half-edge visits counted across every scan attempt, aborted
    /// passes included: exactly `4m` on the fault-free path (two passes,
    /// two half-edges per edge), strictly more when faults forced
    /// partial rescans.
    pub edges_scanned: u64,
    /// Pass restarts performed by the [`RetryPolicy`] — 0 on the
    /// fault-free path, so fault-free reports stay comparable across
    /// sources.
    pub io_retries: u64,
}

/// Build `G_Δ` from a lex-sorted edge stream without materializing the
/// parent graph. For the same `(n, edges, params, seed)` the sparsifier
/// CSR is byte-identical to the in-memory
/// [`crate::sparsifier::build_sparsifier_parallel`] at any thread count,
/// and the stats agree field for field.
pub fn build_sparsifier_streamed(
    src: &mut impl EdgeStreamSource,
    params: &SparsifierParams,
    seed: u64,
) -> Result<(Sparsifier, StreamBuildReport), ReadError> {
    build_sparsifier_streamed_with_retry(src, params, seed, &RetryPolicy::none()).map_err(|e| {
        match e {
            StreamBuildError::RetriesExhausted { last, .. } => last,
        }
    })
}

/// [`build_sparsifier_streamed`] under a [`RetryPolicy`]: a pass that
/// fails is re-run from scratch (its state fully reset) up to
/// `max_attempts` times. Because pass state replays deterministically
/// from `(degrees, seed)`, a recovered build is byte-identical to a
/// fault-free one; the report records the extra scan work
/// (`edges_scanned`) and the restarts (`io_retries`).
pub fn build_sparsifier_streamed_with_retry(
    src: &mut impl EdgeStreamSource,
    params: &SparsifierParams,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<(Sparsifier, StreamBuildReport), StreamBuildError> {
    let mut meter = WorkMeter::new();
    build_sparsifier_streamed_with_retry_metered(src, params, seed, policy, &mut meter)
}

/// [`build_sparsifier_streamed_with_retry`] with unified accounting:
/// restarts land on the meter's `io.retries` key (and from there in
/// `--metrics-json`), alongside whatever the caller mirrors from a
/// fault-injecting source via [`mirror_io_faults`].
pub fn build_sparsifier_streamed_with_retry_metered(
    src: &mut impl EdgeStreamSource,
    params: &SparsifierParams,
    seed: u64,
    policy: &RetryPolicy,
    meter: &mut WorkMeter,
) -> Result<(Sparsifier, StreamBuildReport), StreamBuildError> {
    let n = src.num_vertices();
    let m = src.num_edges();
    let mark_cap = params.mark_cap();
    let mut peak = 0usize;
    let mut edges_scanned = 0u64;
    let mut io_retries = 0u64;

    // Pass 1: degree counting — 4 bytes per vertex of resident state.
    // A retried attempt starts from zeroed counts, so only a *complete*
    // scan ever feeds the sampling stage.
    let mut degree = vec![0u32; n];
    run_pass(src, 1, policy, &mut edges_scanned, &mut io_retries, |src| {
        for d in degree.iter_mut() {
            *d = 0;
        }
        let mut half = 0u64;
        let result = src.scan(&mut |u, v| {
            half += 2;
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        });
        (half, result)
    })?;

    // Between passes: replay every vertex's sampling from its degree.
    // High-degree vertices contribute exactly Δ sorted positions each;
    // low-degree vertices need only a keep-all bit, so the position pool
    // is sized exactly once, up front.
    let mut max_deg = 0usize;
    let mut high_degree = 0usize;
    for &d in &degree {
        let d = d as usize;
        max_deg = max_deg.max(d);
        if d > mark_cap {
            high_degree += 1;
        }
    }
    let mut sampler = PosArraySampler::new(max_deg.max(1));
    let mut keep_all = BitSet::new();
    keep_all.clear_and_resize(n);
    let mut mark_off: Vec<u32> = Vec::with_capacity(n + 1);
    let mut mark_pos: Vec<u32> = Vec::with_capacity(high_degree * params.delta);
    let mut indices: Vec<u32> = Vec::with_capacity(mark_cap.max(1));
    let mut stats = SparsifierStats {
        delta: params.delta,
        mark_cap,
        ..Default::default()
    };
    mark_off.push(0);
    for (v, &d) in degree.iter().enumerate() {
        let deg = d as usize;
        if deg <= mark_cap {
            stats.low_degree_vertices += 1;
            stats.marks_placed += deg;
            if deg > 0 {
                keep_all.set(v);
            }
        } else {
            // The same per-vertex seeding as every in-memory marking
            // path; `sample_indices` draws as a function of `deg` alone,
            // so these are the marks the in-memory build would place.
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            sampler.sample_indices(deg, params.delta, &mut rng, &mut indices);
            stats.marks_placed += indices.len();
            // Only membership matters downstream, so sorting per vertex
            // is safe and makes pass 2 a cursor walk.
            indices.sort_unstable();
            mark_pos.extend_from_slice(&indices);
        }
        mark_off.push(mark_pos.len() as u32);
    }
    let sample_resident = degree.capacity() * 4
        + sampler.capacity_bytes()
        + keep_all.capacity_bytes()
        + mark_off.capacity() * 4
        + mark_pos.capacity() * 4
        + indices.capacity() * 4;
    peak = peak.max(sample_resident);
    drop(sampler);
    drop(indices);

    // Pass 2: arrival-position filtering. The degree array is reused as
    // the arrival counters; `cursor[v]` walks v's sorted position set.
    // Every retry resets counters, cursors, and the kept buffer — the
    // filtering decisions are pure functions of arrival position, so a
    // restarted attempt re-derives the identical kept prefix. An aborted
    // attempt can never over-fill `kept` (it keeps a prefix of the full
    // pass's edges), so the buffer never reallocates across retries and
    // the resident-memory accounting is retry-invariant.
    let mut cursor: Vec<u32> = mark_off[..n].to_vec();
    let mut kept: Vec<(u32, u32)> = Vec::with_capacity(m.min(stats.marks_placed));
    run_pass(src, 2, policy, &mut edges_scanned, &mut io_retries, |src| {
        cursor.copy_from_slice(&mark_off[..n]);
        for counter in degree.iter_mut() {
            *counter = 0;
        }
        kept.clear();
        let mut half = 0u64;
        let result = src.scan(&mut |u, v| {
            half += 2;
            let (ui, vi) = (u as usize, v as usize);
            let pu = degree[ui];
            degree[ui] += 1;
            let pv = degree[vi];
            degree[vi] += 1;
            // Both cursors advance independently: an edge marked from
            // both sides must consume both positions, exactly like the
            // in-memory path placing two marks that dedup to one edge.
            let take_u = keep_all.get(ui) || {
                let c = cursor[ui];
                c < mark_off[ui + 1] && mark_pos[c as usize] == pu && {
                    cursor[ui] = c + 1;
                    true
                }
            };
            let take_v = keep_all.get(vi) || {
                let c = cursor[vi];
                c < mark_off[vi + 1] && mark_pos[c as usize] == pv && {
                    cursor[vi] = c + 1;
                    true
                }
            };
            if take_u || take_v {
                kept.push((u, v));
            }
        });
        (half, result)
    })?;
    let filter_resident = degree.capacity() * 4
        + keep_all.capacity_bytes()
        + mark_off.capacity() * 4
        + mark_pos.capacity() * 4
        + cursor.capacity() * 4
        + kept.capacity() * 8;
    peak = peak.max(filter_resident);
    drop(degree);
    drop(cursor);
    drop(mark_off);
    drop(mark_pos);
    drop(keep_all);

    // Layout: kept edges are a lex-sorted subsequence of the stream, so
    // they feed the sequential sorted layout directly — the same code
    // path `from_marked_edges(parent, ids, 1)` bottoms out in, hence the
    // byte identity. The layout holds the kept buffer (becomes the
    // endpoint array), a 4n-byte degree/cursor array, and the finished
    // offset/target/half-edge arrays.
    let m_sparse = kept.len();
    let kept_capacity = kept.capacity();
    let graph = from_sorted_edges(n, kept);
    stats.edges = graph.num_edges();
    let sparsifier_bytes = graph.memory_bytes();
    let layout_resident = sparsifier_bytes + (kept_capacity - m_sparse) * 8 + n * 4;
    peak = peak.max(layout_resident);

    meter.add(keys::IO_RETRIES, io_retries);
    let report = StreamBuildReport {
        peak_resident_bytes: peak,
        graph_bytes: CsrGraph::projected_memory_bytes(n, m),
        sparsifier_bytes,
        probes: ProbeCounts {
            degree_probes: 2 * n as u64,
            neighbor_probes: stats.marks_placed as u64,
        },
        edges_scanned,
        io_retries,
    };
    Ok((Sparsifier { graph, stats }, report))
}

/// Theorem 3.1 end-to-end, out of core: stream-build the sparsifier,
/// then run the pipeline's sequential match stage (greedy + bounded
/// augmentation at [`stage_eps`]) on it. For a stream of graph `g`, the
/// returned [`PipelineResult`] — matching pairs, sparsifier stats,
/// probes, augmentation stats — is identical to
/// `approx_mcm_via_sparsifier(&g, params, seed, 1)`; only the resident
/// memory differs, and the report quantifies by how much.
pub fn approx_mcm_streamed(
    src: &mut impl EdgeStreamSource,
    params: &SparsifierParams,
    seed: u64,
) -> Result<(PipelineResult, StreamBuildReport), ReadError> {
    approx_mcm_streamed_with_retry(src, params, seed, &RetryPolicy::none()).map_err(|e| match e {
        StreamBuildError::RetriesExhausted { last, .. } => last,
    })
}

/// [`approx_mcm_streamed`] under a [`RetryPolicy`]: the build stage
/// retries failed passes; the match stage runs on the recovered
/// sparsifier exactly as on a fault-free one. Under any recoverable
/// fault plan the [`PipelineResult`] is identical to the fault-free
/// streamed (and in-memory) pipeline — the `chaos-stream` check oracle
/// fingerprints exactly this claim.
pub fn approx_mcm_streamed_with_retry(
    src: &mut impl EdgeStreamSource,
    params: &SparsifierParams,
    seed: u64,
    policy: &RetryPolicy,
) -> Result<(PipelineResult, StreamBuildReport), StreamBuildError> {
    let eps_stage = stage_eps(params.eps);
    // The same Δ-rescaling the in-memory pipeline applies.
    let stage_params = crate::pipeline::stage_params(params);
    let (sparsifier, report) =
        build_sparsifier_streamed_with_retry(src, &stage_params, seed, policy)?;
    let (matching, aug) = approx_mcm_on_sparsifier(&sparsifier.graph, eps_stage);
    Ok((
        PipelineResult {
            matching,
            sparsifier: sparsifier.stats,
            probes: report.probes,
            aug,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::approx_mcm_via_sparsifier;
    use crate::sparsifier::build_sparsifier_parallel;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::edge_stream::FileEdgeSource;
    use sparsimatch_graph::generators::{
        bipartite_gnp, clique, clique_union, gnp, star, CliqueUnionConfig,
    };
    use sparsimatch_graph::io::write_edge_list_file;

    fn family_zoo() -> Vec<(String, CsrGraph)> {
        let mut rng = StdRng::seed_from_u64(77);
        vec![
            ("clique".into(), clique(90)),
            ("star".into(), star(300)),
            ("gnp".into(), gnp(200, 0.08, &mut rng)),
            ("bipartite".into(), bipartite_gnp(120, 90, 0.1, &mut rng)),
            (
                "clique-union".into(),
                clique_union(
                    CliqueUnionConfig {
                        n: 240,
                        diversity: 3,
                        clique_size: 30,
                    },
                    &mut rng,
                ),
            ),
            ("empty".into(), sparsimatch_graph::csr::from_edges(0, [])),
            ("isolated".into(), sparsimatch_graph::csr::from_edges(7, [])),
        ]
    }

    fn assert_stats_eq(a: &SparsifierStats, b: &SparsifierStats, label: &str) {
        assert_eq!(a.delta, b.delta, "{label}: delta");
        assert_eq!(a.mark_cap, b.mark_cap, "{label}: mark_cap");
        assert_eq!(
            a.low_degree_vertices, b.low_degree_vertices,
            "{label}: low_degree_vertices"
        );
        assert_eq!(a.marks_placed, b.marks_placed, "{label}: marks_placed");
        assert_eq!(a.edges, b.edges, "{label}: edges");
    }

    #[test]
    fn streamed_build_is_byte_identical_to_in_memory() {
        let p = SparsifierParams::practical(2, 0.4);
        for (name, mut g) in family_zoo() {
            for seed in [0u64, 7, 41] {
                let reference = build_sparsifier_parallel(&g, &p, seed, 1).unwrap();
                let (streamed, report) = build_sparsifier_streamed(&mut g, &p, seed).unwrap();
                assert_eq!(
                    streamed.graph, reference.graph,
                    "{name} seed {seed}: sparsifier CSR diverged"
                );
                assert_stats_eq(&streamed.stats, &reference.stats, &name);
                assert_eq!(report.sparsifier_bytes, reference.graph.memory_bytes());
                assert_eq!(
                    report.graph_bytes,
                    CsrGraph::projected_memory_bytes(g.num_vertices(), g.num_edges())
                );
                assert_eq!(report.probes.degree_probes, 2 * g.num_vertices() as u64);
                assert_eq!(
                    report.probes.neighbor_probes,
                    streamed.stats.marks_placed as u64
                );
            }
        }
    }

    #[test]
    fn file_stream_matches_in_memory_stream() {
        let dir = std::env::temp_dir().join("sparsimatch-stream-build-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = SparsifierParams::practical(1, 0.4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = gnp(150, 0.2, &mut rng);
        let path = dir.join("gnp.el");
        write_edge_list_file(&g, &path).unwrap();
        let mut file_src = FileEdgeSource::open(&path).unwrap();
        for seed in [3u64, 19] {
            let (from_mem, mem_report) = build_sparsifier_streamed(&mut g, &p, seed).unwrap();
            let (from_file, file_report) =
                build_sparsifier_streamed(&mut file_src, &p, seed).unwrap();
            assert_eq!(from_file.graph, from_mem.graph, "seed {seed}");
            assert_stats_eq(&from_file.stats, &from_mem.stats, "file-vs-mem");
            assert_eq!(file_report, mem_report, "seed {seed}: reports diverged");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_pipeline_matches_in_memory_pipeline() {
        let p = SparsifierParams::practical(2, 0.4);
        for (name, mut g) in family_zoo() {
            for seed in [2u64, 23] {
                let reference = approx_mcm_via_sparsifier(&g, &p, seed, 1).unwrap();
                let (streamed, _) = approx_mcm_streamed(&mut g, &p, seed).unwrap();
                assert_eq!(
                    streamed.matching, reference.matching,
                    "{name} seed {seed}: matching diverged"
                );
                assert_eq!(streamed.probes, reference.probes, "{name} seed {seed}");
                assert_stats_eq(&streamed.sparsifier, &reference.sparsifier, &name);
                let a = &streamed.aug;
                let b = &reference.aug;
                assert_eq!(
                    (a.augmentations, a.searches, a.edge_visits),
                    (b.augmentations, b.searches, b.edge_visits),
                    "{name} seed {seed}: aug stats diverged"
                );
            }
        }
    }

    #[test]
    fn peak_resident_stays_below_materializing_the_parent() {
        // A dense graph whose degrees all exceed the mark cap: the
        // sparsifier genuinely shrinks, and the whole point of the
        // streaming build — O(n + |E_Δ|) resident versus O(n + m) — must
        // show up in the report.
        let mut g = clique(600); // m ≈ 180k, every degree 599
        let p = SparsifierParams::practical(1, 0.3);
        let (s, report) = build_sparsifier_streamed(&mut g, &p, 11).unwrap();
        assert!(s.stats.edges < g.num_edges() / 4);
        assert!(
            report.peak_resident_bytes < report.graph_bytes,
            "peak {} >= graph {}",
            report.peak_resident_bytes,
            report.graph_bytes
        );
        assert!(report.sparsifier_bytes <= report.peak_resident_bytes);
        assert_eq!(report.edges_scanned, 4 * g.num_edges() as u64);
        assert_eq!(report.io_retries, 0);
    }

    #[test]
    fn retry_recovers_byte_identically_under_recoverable_faults() {
        use sparsimatch_graph::edge_stream::{FaultyEdgeSource, IoFaultPlan, IoFaultRates};
        let p = SparsifierParams::practical(2, 0.4);
        let rates = IoFaultRates {
            eio: 0.5,
            short_read: 0.4,
            torn_line: 0.4,
            header_mutation: 0.3,
        };
        for (name, mut g) in family_zoo() {
            for plan_seed in 0u64..4 {
                let (clean, clean_report) = build_sparsifier_streamed(&mut g, &p, 7).unwrap();
                // Horizon 3 with 4 attempts per pass: recovery guaranteed.
                let plan = IoFaultPlan::new(plan_seed, rates).with_horizon(3);
                let mut faulty = FaultyEdgeSource::new(g.clone(), plan);
                let mut meter = WorkMeter::new();
                let (recovered, report) = build_sparsifier_streamed_with_retry_metered(
                    &mut faulty,
                    &p,
                    7,
                    &RetryPolicy::attempts(4),
                    &mut meter,
                )
                .unwrap();
                assert_eq!(
                    recovered.graph, clean.graph,
                    "{name} plan {plan_seed}: recovered build diverged"
                );
                assert_stats_eq(&recovered.stats, &clean.stats, &name);
                assert_eq!(report.io_retries, faulty.stats().total());
                assert_eq!(meter.get(keys::IO_RETRIES), report.io_retries);
                mirror_io_faults(&faulty.stats(), &mut meter);
                assert_eq!(meter.get(keys::IO_FAULTS_EIO), faulty.stats().eio);
                // Aborted attempts are charged: total scan work is the
                // fault-free 4m plus whatever the failed prefixes read.
                assert!(report.edges_scanned >= clean_report.edges_scanned);
                if report.io_retries == 0 {
                    assert_eq!(report.edges_scanned, clean_report.edges_scanned);
                }
            }
        }
    }

    #[test]
    fn unrecoverable_plan_returns_typed_error_after_the_budget() {
        use sparsimatch_graph::edge_stream::{FaultyEdgeSource, IoFaultPlan, IoFaultRates};
        let p = SparsifierParams::practical(2, 0.4);
        let g = clique(40);
        let plan = IoFaultPlan::new(
            5,
            IoFaultRates {
                eio: 1.0,
                ..Default::default()
            },
        );
        let mut faulty = FaultyEdgeSource::new(g, plan);
        let err =
            build_sparsifier_streamed_with_retry(&mut faulty, &p, 7, &RetryPolicy::attempts(3))
                .unwrap_err();
        match err {
            StreamBuildError::RetriesExhausted {
                pass,
                attempts,
                last,
            } => {
                assert_eq!(pass, 1, "every attempt dies in pass 1");
                assert_eq!(attempts, 3);
                assert!(matches!(last, ReadError::Io(_)));
            }
        }
        assert_eq!(faulty.attempts(), 3);
    }

    #[test]
    fn exponential_backoff_caps_and_grows() {
        let b = Backoff::Exponential {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(5),
        };
        assert_eq!(b.delay(1), Some(Duration::from_millis(2)));
        assert_eq!(b.delay(2), Some(Duration::from_millis(4)));
        assert_eq!(b.delay(3), Some(Duration::from_millis(5)));
        assert_eq!(b.delay(40), Some(Duration::from_millis(5)));
        assert_eq!(Backoff::None.delay(1), None);
    }
}
