//! The paper's negative results as executable instances.
//!
//! * **Lemma 2.13** — any *deterministic* Δ-probe/Δ-mark sparsifier has
//!   approximation ratio ≥ `n/(2Δ)` on clique-minus-one-edge instances.
//!   We expose a family of deterministic markers and an adversary that
//!   searches for the worst non-edge placement, reproducing the ratio.
//! * **Observation 2.14** — the two-odd-cliques-with-a-bridge instance:
//!   the unique maximum matching uses the bridge, which the random
//!   sparsifier marks with probability exactly `1 − (1 − 2Δ/n)² ≤ 4Δ/n`,
//!   so preserving the MCM *exactly* requires `Δ = Ω(p·n)`.

use crate::params::SparsifierParams;
use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_matching::blossom::maximum_matching;

/// A deterministic per-vertex marking rule: which `Δ` adjacency-array
/// slots of `v` (degree `deg`) to mark.
pub trait DeterministicMarker {
    /// Name for experiment tables.
    fn name(&self) -> &'static str;
    /// Indices into `0..deg` to mark; must return at most `delta` indices.
    fn mark(&self, v: VertexId, deg: usize, delta: usize) -> Vec<u32>;
}

/// Mark the first Δ slots.
pub struct FirstDelta;

impl DeterministicMarker for FirstDelta {
    fn name(&self) -> &'static str {
        "first-delta"
    }
    fn mark(&self, _v: VertexId, deg: usize, delta: usize) -> Vec<u32> {
        (0..deg.min(delta) as u32).collect()
    }
}

/// Mark every `⌈deg/Δ⌉`-th slot (an evenly spread deterministic rule).
pub struct Strided;

impl DeterministicMarker for Strided {
    fn name(&self) -> &'static str {
        "strided"
    }
    fn mark(&self, _v: VertexId, deg: usize, delta: usize) -> Vec<u32> {
        if deg <= delta {
            return (0..deg as u32).collect();
        }
        let stride = deg.div_ceil(delta);
        (0..deg as u32).step_by(stride).take(delta).collect()
    }
}

/// A fixed-key pseudo-random-looking but deterministic rule (shows that
/// "looking random" does not help: the adversary knows the rule).
pub struct KeyedHash {
    /// Mixing key; the adversary is assumed to know it (deterministic
    /// algorithms have no secrets).
    pub key: u64,
}

impl DeterministicMarker for KeyedHash {
    fn name(&self) -> &'static str {
        "keyed-hash"
    }
    fn mark(&self, v: VertexId, deg: usize, delta: usize) -> Vec<u32> {
        if deg <= delta {
            return (0..deg as u32).collect();
        }
        // splitmix-style: deterministic slots, distinct by construction.
        let mut out = Vec::with_capacity(delta);
        let mut x = self.key ^ (v.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut seen = std::collections::HashSet::with_capacity(delta * 2);
        while out.len() < delta {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let slot = (z % deg as u64) as u32;
            if seen.insert(slot) {
                out.push(slot);
            }
        }
        out
    }
}

/// Apply a deterministic marker to `g`, producing the marked subgraph.
pub fn deterministic_sparsifier(
    g: &CsrGraph,
    marker: &dyn DeterministicMarker,
    delta: usize,
) -> CsrGraph {
    let mut keep = Vec::new();
    for v in 0..g.num_vertices() {
        let v = VertexId::new(v);
        for i in marker.mark(v, g.degree(v), delta) {
            keep.push(g.incident_edge(v, i as usize));
        }
    }
    g.edge_subgraph(keep.into_iter())
}

/// Outcome of the Lemma 2.13 experiment for one marker.
#[derive(Clone, Debug)]
pub struct DeterministicFailure {
    /// Marker name.
    pub marker: &'static str,
    /// True MCM of the instance (`n/2` — a perfect matching exists).
    pub true_mcm: usize,
    /// Worst (smallest) sparsifier MCM over the probed non-edge placements.
    pub worst_sparsifier_mcm: usize,
    /// The realized approximation ratio `true_mcm / worst_sparsifier_mcm`.
    pub ratio: f64,
    /// The lemma's bound `n/(2Δ)` the ratio should approach.
    pub lemma_bound: f64,
}

/// Run the Lemma 2.13 adversary against a deterministic marker on the
/// clique-minus-one-edge family of size `n` (even): try a spread of
/// non-edge placements and report the worst case.
///
/// For any deterministic rule the marked subgraph has at most `n·Δ` edges,
/// and an adversarial non-edge placement forces the sparsifier MCM down
/// toward `Δ`, i.e. ratio up toward `n/(2Δ)`.
pub fn deterministic_marker_worst_case(
    marker: &dyn DeterministicMarker,
    n: usize,
    delta: usize,
    placements: usize,
) -> DeterministicFailure {
    assert!(n.is_multiple_of(2) && n >= 4);
    let mut worst = usize::MAX;
    // Adversarial search over a spread of non-edge positions (the full
    // quadratic search is exact but unnecessary: the worst case repeats).
    let step = ((n * (n - 1) / 2) / placements.max(1)).max(1);
    let mut idx = 0usize;
    while idx < n * (n - 1) / 2 {
        let (a, b) = unrank(idx, n);
        let g = sparsimatch_graph::generators::clique_minus_edge(n, (a, b));
        let s = deterministic_sparsifier(&g, marker, delta);
        let mcm = maximum_matching(&s).len();
        worst = worst.min(mcm);
        idx += step;
    }
    let true_mcm = n / 2;
    DeterministicFailure {
        marker: marker.name(),
        true_mcm,
        worst_sparsifier_mcm: worst,
        ratio: true_mcm as f64 / worst.max(1) as f64,
        lemma_bound: n as f64 / (2.0 * delta as f64),
    }
}

/// The *adaptive* adversary game of Lemma 2.13, played faithfully.
///
/// The adversary fixes `D = {0, …, Δ−1}` and answers adjacency-array
/// probes: a probe on `u ∉ D` is answered with a fresh vertex of `D`; a
/// probe on `u ∈ D` with a fresh vertex of `V∖{u}`. Every answer is
/// therefore incident on `D`. After the marker commits its ≤ Δ marks per
/// vertex, the adversary adjudicates:
///
/// * if some marked pair has both endpoints outside `D` (necessarily
///   unprobed), the adversary declares exactly that pair to be the
///   non-edge — the output is **infeasible** for a graph consistent with
///   every answer given;
/// * otherwise every sparsifier edge touches `D`, so `D` is a vertex
///   cover of the sparsifier and its MCM is at most `Δ`, while the true
///   MCM is `n/2`: ratio ≥ `n/(2Δ)`.
pub struct AdversaryGame {
    n: usize,
    delta: usize,
    /// answers[u] = memo of (position -> answered vertex).
    answers: Vec<std::collections::HashMap<usize, u32>>,
    /// next fresh answer cursor per vertex.
    next: Vec<u32>,
    probes_used: Vec<usize>,
}

/// Outcome of one adversary game.
#[derive(Clone, Debug)]
pub struct GameOutcome {
    /// Whether the marker's output is feasible for every graph consistent
    /// with the adversary's answers.
    pub feasible: bool,
    /// MCM of the marked subgraph (only meaningful when feasible).
    pub sparsifier_mcm: usize,
    /// `true_mcm / sparsifier_mcm` (∞ encoded as `f64::INFINITY` when
    /// infeasible — the output is simply wrong on some instance).
    pub ratio: f64,
    /// The lemma's bound `n/(2Δ)`.
    pub lemma_bound: f64,
}

impl AdversaryGame {
    /// Start a game on `n` (even) vertices with mark budget Δ < n/2.
    pub fn new(n: usize, delta: usize) -> Self {
        assert!(n.is_multiple_of(2) && delta < n / 2);
        AdversaryGame {
            n,
            delta,
            answers: vec![std::collections::HashMap::new(); n],
            next: vec![0; n],
            probes_used: vec![0; n],
        }
    }

    /// Answer the marker's probe of position `pos` of `u`'s adjacency
    /// array. Each vertex has degree `n−1` or `n−2`; the adversary answers
    /// consistently (same position → same vertex) and never reveals the
    /// non-edge. At most Δ probes per vertex are allowed (Lemma 2.13's
    /// budget); further probes panic.
    pub fn probe(&mut self, u: VertexId, pos: usize) -> VertexId {
        let ui = u.index();
        assert!(ui < self.n && pos < self.n - 1);
        if let Some(&a) = self.answers[ui].get(&pos) {
            return VertexId(a);
        }
        self.probes_used[ui] += 1;
        assert!(
            self.probes_used[ui] <= self.delta,
            "marker exceeded its probe budget on {u:?}"
        );
        let answer = if ui >= self.delta {
            // u ∉ D: reveal a fresh member of D.
            let a = self.next[ui];
            assert!((a as usize) < self.delta, "budget enforced above");
            self.next[ui] += 1;
            a
        } else {
            // u ∈ D: reveal a fresh vertex ≠ u.
            let mut a = self.next[ui];
            if a as usize == ui {
                a += 1;
            }
            self.next[ui] = a + 1;
            a
        };
        self.answers[ui].insert(pos, answer);
        VertexId(answer)
    }

    /// Adjudicate the marker's committed edge set.
    pub fn adjudicate(&self, marks: &[(VertexId, VertexId)]) -> GameOutcome {
        let lemma_bound = self.n as f64 / (2.0 * self.delta as f64);
        // Any both-endpoints-outside-D mark is fatal: the adversary names
        // it as the non-edge.
        for &(u, w) in marks {
            if u.index() >= self.delta && w.index() >= self.delta {
                return GameOutcome {
                    feasible: false,
                    sparsifier_mcm: 0,
                    ratio: f64::INFINITY,
                    lemma_bound,
                };
            }
        }
        // Otherwise: place the non-edge between two unmarked outside-D
        // vertices (they exist: delta < n/2), realize the graph, and
        // measure the marked subgraph's MCM.
        let non_edge = (self.n - 2, self.n - 1);
        let g = sparsimatch_graph::generators::clique_minus_edge(self.n, non_edge);
        let mut b = sparsimatch_graph::csr::GraphBuilder::new(self.n);
        for &(u, w) in marks {
            if (u.index().min(w.index()), u.index().max(w.index())) != non_edge {
                b.add_edge(u, w);
            }
        }
        let s = b.build();
        let mcm = maximum_matching(&s).len().max(1);
        let true_mcm = maximum_matching(&g).len();
        GameOutcome {
            feasible: true,
            sparsifier_mcm: mcm,
            ratio: true_mcm as f64 / mcm as f64,
            lemma_bound,
        }
    }
}

/// Play the game with a position-based deterministic marker (it probes the
/// positions it would mark and marks the answered vertices — the canonical
/// honest strategy).
pub fn play_adversary_game(
    marker: &dyn DeterministicMarker,
    n: usize,
    delta: usize,
) -> GameOutcome {
    let mut game = AdversaryGame::new(n, delta);
    let mut marks = Vec::new();
    for v in 0..n {
        let v = VertexId::new(v);
        let deg = n - 1; // consistent upper bound; the non-edge is hidden
        for pos in marker.mark(v, deg, delta) {
            let w = game.probe(v, pos as usize);
            marks.push((v, w));
        }
    }
    game.adjudicate(&marks)
}

fn unrank(mut k: usize, n: usize) -> (usize, usize) {
    let mut u = 0usize;
    loop {
        let row = n - 1 - u;
        if k < row {
            return (u, u + 1 + k);
        }
        k -= row;
        u += 1;
    }
}

/// Observation 2.14's closed form: the probability that the bridge edge of
/// the two-odd-cliques instance (on `n = 2·half` vertices) is marked, when
/// each vertex marks `delta` incident edges uniformly:
/// `1 − (1 − Δ/half)²` for `Δ ≤ half`, which is `≤ 4Δ/n`.
pub fn bridge_mark_probability(half: usize, delta: usize) -> f64 {
    // Each bridge endpoint has degree `half` ((half−1) clique neighbors +
    // the bridge) and marks min(delta, half) of them.
    let q = 1.0 - (delta.min(half) as f64) / half as f64;
    1.0 - q * q
}

/// Monte-Carlo outcome for Observation 2.14.
#[derive(Clone, Copy, Debug)]
pub struct BridgeExperiment {
    /// Fraction of trials in which the bridge edge was marked.
    pub bridge_marked_rate: f64,
    /// Fraction of trials in which the sparsifier preserved the MCM
    /// exactly (`= half`). Cannot exceed the bridge rate.
    pub exact_preserved_rate: f64,
    /// The closed-form probability the rates should match.
    pub predicted: f64,
}

/// Estimate the bridge-marking and exact-preservation rates of the plain
/// `Δ`-marking construction (no low-degree tweak: `mark_cap = Δ`, matching
/// Section 2's construction, which Observation 2.14 analyzes) on the
/// two-odd-cliques instance.
pub fn bridge_experiment(
    half: usize,
    delta: usize,
    trials: usize,
    rng: &mut impl Rng,
) -> BridgeExperiment {
    let (g, (a, b)) = sparsimatch_graph::generators::two_cliques_bridge(half);
    let params = SparsifierParams {
        beta: 2,
        eps: 0.5,
        delta,
    };
    // Override the tweak: Section 2's construction marks exactly Δ edges
    // (or all, if deg ≤ Δ). We emulate by using mark_cap = Δ via a direct
    // construction below.
    let mut marked_count = 0usize;
    let mut exact_count = 0usize;
    for _ in 0..trials {
        let s = build_plain_sparsifier(&g, params.delta, rng);
        if s.has_edge(a, b) {
            marked_count += 1;
            if maximum_matching(&s).len() == half {
                exact_count += 1;
            }
        }
    }
    BridgeExperiment {
        bridge_marked_rate: marked_count as f64 / trials as f64,
        exact_preserved_rate: exact_count as f64 / trials as f64,
        predicted: bridge_mark_probability(half, delta),
    }
}

/// Section 2's plain construction: each vertex marks exactly
/// `min(Δ, deg)` uniform incident edges (low-degree threshold Δ, not 2Δ).
pub fn build_plain_sparsifier(g: &CsrGraph, delta: usize, rng: &mut impl Rng) -> CsrGraph {
    let params = SparsifierParams {
        beta: 1,
        eps: 0.5,
        delta,
    };
    // Reuse the sampler with mark_cap = delta by calling the internal
    // marking path directly.
    let mut sampler = crate::sampler::PosArraySampler::new(g.max_degree());
    let mut indices = Vec::new();
    let mut keep = Vec::new();
    for v in 0..g.num_vertices() {
        let v = VertexId::new(v);
        crate::sampler::mark_indices_for_vertex(
            g,
            v,
            params.delta,
            params.delta, // cap = Δ: the Section 2 construction
            &mut sampler,
            rng,
            &mut indices,
        );
        for &i in &indices {
            keep.push(g.incident_edge(v, i as usize));
        }
    }
    g.edge_subgraph(keep.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn first_delta_collapses_clique_matching() {
        let n = 64;
        let delta = 4;
        let r = deterministic_marker_worst_case(&FirstDelta, n, delta, 8);
        assert_eq!(r.true_mcm, 32);
        // The lemma predicts ratio >= n/(2Δ) = 8 in the worst case; the
        // first-delta rule is bad on every placement.
        assert!(
            r.ratio >= r.lemma_bound / 2.0,
            "ratio {} vs bound {}",
            r.ratio,
            r.lemma_bound
        );
        assert!(r.worst_sparsifier_mcm <= 2 * delta);
    }

    #[test]
    fn strided_also_fails() {
        let r = deterministic_marker_worst_case(&Strided, 64, 4, 8);
        // Strided marks are deterministic too: some placement hurts. The
        // quantitative collapse is rule-specific; we assert the ratio is
        // bounded away from 1 (no deterministic rule achieves 1 + eps).
        assert!(r.ratio > 1.5, "ratio {}", r.ratio);
    }

    #[test]
    fn adaptive_adversary_defeats_every_marker() {
        // Against the *adaptive* adversary, even hash-spread deterministic
        // rules collapse: all answers are incident on D, so the realized
        // sparsifier MCM is at most Δ and the ratio meets the lemma bound.
        for marker in [
            &FirstDelta as &dyn DeterministicMarker,
            &Strided,
            &KeyedHash { key: 0xDEADBEEF },
        ] {
            let r = play_adversary_game(marker, 64, 4);
            assert!(
                r.feasible,
                "{}: honest strategies stay feasible",
                marker.name()
            );
            assert!(
                r.ratio >= r.lemma_bound,
                "{}: ratio {} below bound {}",
                marker.name(),
                r.ratio,
                r.lemma_bound
            );
        }
    }

    #[test]
    fn blind_marks_outside_d_are_infeasible() {
        let game = AdversaryGame::new(16, 3);
        // Marker blindly claims edge (10, 12) without probing.
        let out = game.adjudicate(&[(VertexId(10), VertexId(12))]);
        assert!(!out.feasible);
        assert!(out.ratio.is_infinite());
    }

    #[test]
    fn adversary_answers_are_consistent_and_d_incident() {
        let mut game = AdversaryGame::new(20, 4);
        let a1 = game.probe(VertexId(10), 0);
        let a2 = game.probe(VertexId(10), 0);
        assert_eq!(a1, a2, "same position answered consistently");
        assert!(a1.index() < 4, "answers to outside-D vertices come from D");
        let b = game.probe(VertexId(10), 5);
        assert_ne!(a1, b, "fresh positions get fresh answers");
        // Probing a D vertex yields something != itself.
        let c = game.probe(VertexId(2), 0);
        assert_ne!(c, VertexId(2));
    }

    #[test]
    #[should_panic(expected = "probe budget")]
    fn probe_budget_enforced() {
        let mut game = AdversaryGame::new(12, 2);
        for pos in 0..3 {
            game.probe(VertexId(7), pos);
        }
    }

    #[test]
    fn random_marking_beats_deterministic_on_same_instance() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 64;
        let delta = 4;
        let g = sparsimatch_graph::generators::clique_minus_edge(n, (0, 1));
        let s = build_plain_sparsifier(&g, delta, &mut rng);
        let mcm = maximum_matching(&s).len();
        let det = deterministic_sparsifier(&g, &FirstDelta, delta);
        let det_mcm = maximum_matching(&det).len();
        assert!(
            mcm > 2 * det_mcm,
            "random {mcm} should dwarf deterministic {det_mcm}"
        );
    }

    #[test]
    fn bridge_probability_closed_form() {
        // half = 10, delta = 2: 1 - (1 - 0.2)^2 = 0.36.
        let p = bridge_mark_probability(10, 2);
        assert!((p - 0.36).abs() < 1e-12);
        // Upper bound 4Δ/n = 8/20 = 0.4.
        assert!(p <= 4.0 * 2.0 / 20.0 + 1e-12);
        // Saturation at delta >= half.
        assert_eq!(bridge_mark_probability(5, 5), 1.0);
    }

    #[test]
    fn bridge_monte_carlo_matches_prediction() {
        let mut rng = StdRng::seed_from_u64(12);
        let r = bridge_experiment(11, 2, 3000, &mut rng);
        assert!(
            (r.bridge_marked_rate - r.predicted).abs() < 0.04,
            "rate {} vs predicted {}",
            r.bridge_marked_rate,
            r.predicted
        );
        assert!(r.exact_preserved_rate <= r.bridge_marked_rate);
    }

    #[test]
    fn exact_preservation_needs_bridge() {
        // Whenever the bridge is missing the MCM drops to half - 1.
        let mut rng = StdRng::seed_from_u64(13);
        let (g, (a, b)) = sparsimatch_graph::generators::two_cliques_bridge(9);
        for _ in 0..20 {
            let s = build_plain_sparsifier(&g, 3, &mut rng);
            let mcm = maximum_matching(&s).len();
            if s.has_edge(a, b) {
                assert!(mcm <= 9);
            } else {
                assert!(mcm <= 8, "without the bridge MCM must drop");
            }
        }
    }

    #[test]
    fn markers_respect_budget() {
        for marker in [
            &FirstDelta as &dyn DeterministicMarker,
            &Strided,
            &KeyedHash { key: 7 },
        ] {
            for deg in [0usize, 1, 5, 50] {
                for delta in [1usize, 4, 10] {
                    let marks = marker.mark(VertexId(3), deg, delta);
                    assert!(marks.len() <= delta.max(deg.min(delta)));
                    assert!(marks.len() <= deg.max(delta));
                    let mut sorted = marks.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), marks.len(), "duplicate marks");
                    assert!(marks.iter().all(|&i| (i as usize) < deg.max(1) || deg == 0));
                }
            }
        }
    }
}
