//! Theorem 3.1 end-to-end: the sequential `(1+ε)`-approximate maximum
//! matching in time sublinear in `|E(G)|`.
//!
//! Pipeline: (1) build `G_Δ` with the deterministic-time sampler — `O(n·Δ)`
//! probes; (2) run the `(1+ε')`-approximate matching of
//! [`sparsimatch_matching::bounded_aug`] on the sparsifier — linear in
//! `|E(G_Δ)| = O(n·Δ)` per phase. The accuracy budget is split between the
//! two `(1+·)` factors so the end-to-end guarantee is `1 + ε`:
//! `(1 + ε/2.5)² ≤ 1 + ε` for `ε ≤ 1`.

use crate::params::SparsifierParams;
use crate::sparsifier::{
    build_sparsifier, build_sparsifier_parallel_metered, SparsifierStats, ThreadCountError,
};
use rand::Rng;
use sparsimatch_graph::adjacency::{CountingOracle, ProbeCounts};
use sparsimatch_graph::csr::{CsrGraph, GraphBuilder};
use sparsimatch_matching::bounded_aug::{approx_maximum_matching_from, AugStats};
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::Matching;
use sparsimatch_obs::{keys, WorkMeter};

/// Everything the sequential pipeline measured while running.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The `(1+ε)`-approximate matching — valid for the *original* graph.
    pub matching: Matching,
    /// Sparsifier construction statistics.
    pub sparsifier: SparsifierStats,
    /// Adjacency-array probes spent building the sparsifier (the
    /// sublinearity certificate: compare with `m`).
    pub probes: ProbeCounts,
    /// Augmentation statistics on the sparsifier.
    pub aug: AugStats,
}

/// Split a target ε into the per-stage ε' so that `(1+ε')² ≤ 1+ε`.
pub fn stage_eps(eps: f64) -> f64 {
    eps / 2.5
}

/// Theorem 3.1: compute a `(1+ε)`-approximate MCM of `g` by sparsifying
/// and matching on the sparsifier. `params.eps` is the *end-to-end* target;
/// both stages run at [`stage_eps`].
pub fn approx_mcm_via_sparsifier(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> PipelineResult {
    approx_mcm_via_sparsifier_impl(g, params, rng, None)
}

/// [`approx_mcm_via_sparsifier`] with unified work accounting: adjacency
/// probes, sampler RNG draws and overlay writes, sparsifier size, and
/// augmentation work are mirrored into `meter` under the shared
/// [`sparsimatch_obs::keys`] names. The result is identical to the
/// unmetered pipeline for the same RNG state.
pub fn approx_mcm_via_sparsifier_metered(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    meter: &mut WorkMeter,
) -> PipelineResult {
    approx_mcm_via_sparsifier_impl(g, params, rng, Some(meter))
}

fn approx_mcm_via_sparsifier_impl(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    mut meter: Option<&mut WorkMeter>,
) -> PipelineResult {
    let eps_stage = stage_eps(params.eps);
    // Size Δ for the stage accuracy, keeping the caller's scaling choice
    // relative to the paper constant.
    let scale = params.delta as f64
        / (20.0 * (params.beta as f64 / params.eps) * (24.0 / params.eps).ln()).ceil();
    let stage_params = SparsifierParams::scaled(params.beta, eps_stage, scale.max(1e-9));

    // Stage 1: sparsify, counting probes.
    let counter = CountingOracle::new(g);
    let marks = match meter.as_deref_mut() {
        Some(m) => crate::sparsifier::mark_edges_oracle_metered(&counter, &stage_params, rng, m),
        None => crate::sparsifier::mark_edges_oracle(&counter, &stage_params, rng),
    };
    let probes = counter.counts();
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), marks.len());
    for (u, v) in marks {
        b.add_edge(u, v);
    }
    let sparse = b.build();
    let sparsifier = SparsifierStats {
        delta: stage_params.delta,
        mark_cap: stage_params.mark_cap(),
        low_degree_vertices: 0, // not tracked through the oracle path
        marks_placed: 0,
        edges: sparse.num_edges(),
    };

    // Stage 2: (1+eps')-approximate matching on the sparsifier.
    let init = greedy_maximal_matching(&sparse);
    let (matching, aug) = approx_maximum_matching_from(&sparse, init, eps_stage);
    debug_assert!(matching.is_valid_for(g), "sparsifier must be a subgraph");

    if let Some(meter) = meter {
        mirror_pipeline(meter, &probes, &sparsifier, &aug);
    }

    PipelineResult {
        matching,
        sparsifier,
        probes,
        aug,
    }
}

/// Theorem 3.1 pipeline with the parallel sparsifier stage: stage 1 runs
/// [`build_sparsifier_parallel_metered`]'s deterministic per-vertex
/// seeding across `threads` workers, stage 2 is unchanged. The result is
/// identical for any accepted thread count (including 1), though it
/// differs from the single-RNG sequential pipeline because vertices draw
/// from independent streams. Rejects out-of-range `threads` like
/// [`crate::sparsifier::build_sparsifier_parallel`].
pub fn approx_mcm_via_sparsifier_parallel(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: &mut WorkMeter,
) -> Result<PipelineResult, ThreadCountError> {
    let eps_stage = stage_eps(params.eps);
    let scale = params.delta as f64
        / (20.0 * (params.beta as f64 / params.eps) * (24.0 / params.eps).ln()).ceil();
    let stage_params = SparsifierParams::scaled(params.beta, eps_stage, scale.max(1e-9));

    let mut stage_meter = WorkMeter::new();
    let s = build_sparsifier_parallel_metered(g, &stage_params, seed, threads, &mut stage_meter)?;
    let probes = ProbeCounts {
        degree_probes: stage_meter.get(keys::DEGREE_PROBES),
        neighbor_probes: stage_meter.get(keys::NEIGHBOR_PROBES),
    };

    let init = greedy_maximal_matching(&s.graph);
    let (matching, aug) = approx_maximum_matching_from(&s.graph, init, eps_stage);
    debug_assert!(matching.is_valid_for(g), "sparsifier must be a subgraph");

    meter.absorb(&stage_meter);
    meter.add(keys::EDGE_VISITS, aug.edge_visits);
    meter.add(keys::AUG_SEARCHES, aug.searches as u64);
    meter.add(keys::AUGMENTATIONS, aug.augmentations as u64);

    Ok(PipelineResult {
        matching,
        sparsifier: s.stats,
        probes,
        aug,
    })
}

fn mirror_pipeline(
    meter: &mut WorkMeter,
    probes: &ProbeCounts,
    sparsifier: &SparsifierStats,
    aug: &AugStats,
) {
    meter.add(keys::DEGREE_PROBES, probes.degree_probes);
    meter.add(keys::NEIGHBOR_PROBES, probes.neighbor_probes);
    meter.add(keys::SPARSIFIER_EDGES, sparsifier.edges as u64);
    meter.add(keys::EDGE_VISITS, aug.edge_visits);
    meter.add(keys::AUG_SEARCHES, aug.searches as u64);
    meter.add(keys::AUGMENTATIONS, aug.augmentations as u64);
}

/// The same pipeline on a pre-built sparsifier (used by the dynamic
/// scheme, which rebuilds the sparsifier itself under a work budget).
pub fn approx_mcm_on_sparsifier(sparse: &CsrGraph, eps: f64) -> (Matching, AugStats) {
    let init = greedy_maximal_matching(sparse);
    approx_maximum_matching_from(sparse, init, eps)
}

/// Convenience wrapper returning a [`crate::sparsifier::Sparsifier`] plus
/// the matching (CSR path with full stats, no probe counting).
pub fn approx_mcm_with_stats(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> (crate::sparsifier::Sparsifier, Matching) {
    let eps_stage = stage_eps(params.eps);
    let s = build_sparsifier(g, params, rng);
    let (m, _) = approx_mcm_on_sparsifier(&s.graph, eps_stage);
    (s, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        clique, clique_union, line_graph, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn stage_eps_composes() {
        for &eps in &[0.1f64, 0.3, 0.5, 0.9] {
            let s = stage_eps(eps);
            assert!((1.0 + s) * (1.0 + s) <= 1.0 + eps + 1e-12);
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = clique(200);
        let p = SparsifierParams::practical(1, 0.3);
        let exact = maximum_matching(&g).len(); // 100
        for _ in 0..3 {
            let r = approx_mcm_via_sparsifier(&g, &p, &mut rng);
            assert!(r.matching.is_valid_for(&g));
            assert!(
                r.matching.len() as f64 * 1.3 >= exact as f64,
                "{} vs {exact}",
                r.matching.len()
            );
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique_union() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 300,
                diversity: 3,
                clique_size: 60,
            },
            &mut rng,
        );
        let p = SparsifierParams::practical(3, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, &mut rng);
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn probes_sublinear_on_dense_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = clique(500); // m ≈ 125k
        let p = SparsifierParams::practical(1, 0.5);
        let r = approx_mcm_via_sparsifier(&g, &p, &mut rng);
        let m = g.num_edges() as u64;
        assert!(
            r.probes.total() < m / 2,
            "probes {} not sublinear in m {m}",
            r.probes.total()
        );
    }

    #[test]
    fn line_graph_pipeline() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = sparsimatch_graph::generators::gnp(60, 0.25, &mut rng);
        let g = line_graph(&base); // beta <= 2
        if g.num_edges() == 0 {
            return;
        }
        let p = SparsifierParams::practical(2, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, &mut rng);
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn unit_disk_pipeline() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(500, 1.0, 30.0),
            &mut rng,
        );
        let p = SparsifierParams::practical(5, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, &mut rng);
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn metered_pipeline_matches_unmetered() {
        let g = clique(120);
        let p = SparsifierParams::practical(1, 0.4);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut meter = WorkMeter::new();
        let plain = approx_mcm_via_sparsifier(&g, &p, &mut rng1);
        let metered = approx_mcm_via_sparsifier_metered(&g, &p, &mut rng2, &mut meter);
        assert_eq!(plain.matching.len(), metered.matching.len());
        assert_eq!(plain.probes, metered.probes);
        assert_eq!(meter.get(keys::DEGREE_PROBES), metered.probes.degree_probes);
        assert_eq!(
            meter.get(keys::NEIGHBOR_PROBES),
            metered.probes.neighbor_probes
        );
        assert_eq!(
            meter.get(keys::SPARSIFIER_EDGES),
            metered.sparsifier.edges as u64
        );
        assert_eq!(meter.get(keys::EDGE_VISITS), metered.aug.edge_visits);
        assert!(meter.get(keys::RNG_DRAWS) > 0);
    }

    #[test]
    fn parallel_pipeline_is_thread_count_invariant() {
        let g = clique(150);
        let p = SparsifierParams::practical(1, 0.4);
        let mut m2 = WorkMeter::new();
        let mut m4 = WorkMeter::new();
        let r2 = approx_mcm_via_sparsifier_parallel(&g, &p, 13, 2, &mut m2).unwrap();
        let r4 = approx_mcm_via_sparsifier_parallel(&g, &p, 13, 4, &mut m4).unwrap();
        let e2: Vec<_> = r2.matching.pairs().collect();
        let e4: Vec<_> = r4.matching.pairs().collect();
        assert_eq!(e2, e4);
        assert_eq!(r2.probes, r4.probes);
        let c2: Vec<_> = m2.counters().map(|(k, v)| (k.to_string(), v)).collect();
        let c4: Vec<_> = m4.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(c2, c4);
        assert!(r2.matching.is_valid_for(&g));
        assert!(approx_mcm_via_sparsifier_parallel(&g, &p, 13, 0, &mut WorkMeter::new()).is_err());
    }

    #[test]
    fn with_stats_variant_agrees() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique(100);
        let p = SparsifierParams::practical(1, 0.4);
        let (s, m) = approx_mcm_with_stats(&g, &p, &mut rng);
        assert!(m.is_valid_for(&g));
        assert!(m.is_valid_for(&s.graph));
        assert!(s.stats.edges > 0);
    }
}
