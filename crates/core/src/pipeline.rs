//! Theorem 3.1 end-to-end: the `(1+ε)`-approximate maximum matching in
//! time sublinear in `|E(G)|`.
//!
//! Pipeline: (1) **mark** — every vertex marks Δ uniform incident edges
//! with the deterministic-time sampler, `O(n·Δ)` probes; (2) **extract** —
//! lay out the marked edges as the sparsifier CSR `G_Δ`; (3) **match** —
//! run greedy initialization plus the `(1+ε')`-approximate matching of
//! [`sparsimatch_matching::bounded_aug`] on the sparsifier, linear in
//! `|E(G_Δ)| = O(n·Δ)` per phase. The accuracy budget is split between the
//! two `(1+·)` factors so the end-to-end guarantee is `1 + ε`:
//! `(1 + ε/2.5)² ≤ 1 + ε` for `ε ≤ 1`.
//!
//! All three stages honor the requested thread count and are deterministic
//! for a fixed seed: the output is byte-identical for any accepted thread
//! count (marking uses per-vertex seeded RNG streams, extraction produces
//! the sequential CSR layout, and the parallel greedy computes the
//! lexicographically-first maximal matching).

use crate::params::SparsifierParams;
use crate::scratch::PipelineScratch;
use crate::sparsifier::{
    mark_edges_parallel, mark_edges_sequential_into, SparsifierStats, ThreadCountError, MAX_THREADS,
};
use rand::Rng;
use sparsimatch_graph::adjacency::ProbeCounts;
use sparsimatch_graph::csr::{from_marked_edges, CsrGraph};
use sparsimatch_matching::bounded_aug::{
    approx_maximum_matching_from, eliminate_augmenting_paths_up_to_with, max_path_len_for_eps,
    AugStats,
};
use sparsimatch_matching::greedy::{
    greedy_maximal_matching, greedy_maximal_matching_into, greedy_maximal_matching_parallel,
};
use sparsimatch_matching::Matching;
use sparsimatch_obs::{keys, WorkMeter};
use std::sync::OnceLock;
use std::time::Instant;

/// Below this many *input* edges the mark stage ignores the requested
/// thread count and runs sequentially: worker spawn plus shard merge
/// overhead exceeds the marking work itself.
const MARK_PARALLEL_CUTOFF: usize = 1 << 17;

/// Below this many *sparsifier* edges the match stage runs sequentially.
/// The committed bench baseline showed the parallel greedy's local-minima
/// rounds an order of magnitude slower than the sequential scan on an
/// `O(n·Δ)`-sized sparsifier (clique family: 235µs at one thread vs 2.6ms
/// at two), so small extracted graphs always take the sequential path.
const MATCH_PARALLEL_CUTOFF: usize = 1 << 17;

/// Whether this host can run more than one worker at once (cached). On a
/// single-core host every stage takes its sequential path regardless of
/// the requested thread count — the output is byte-identical either way,
/// so this is purely a latency decision.
fn host_has_parallelism() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get() > 1)
            .unwrap_or(false)
    })
}

/// Adaptive dispatch: the worker count a stage should actually use for
/// `work_items` units of work, given the caller asked for `requested`
/// threads. Every stage is thread-count invariant, so falling back to one
/// worker never changes the output — only the wall clock.
fn stage_threads(requested: usize, work_items: usize, cutoff: usize) -> usize {
    if requested == 1 || !host_has_parallelism() || work_items < cutoff {
        1
    } else {
        requested
    }
}

/// Everything the pipeline measured while running.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The `(1+ε)`-approximate matching — valid for the *original* graph.
    pub matching: Matching,
    /// Sparsifier construction statistics.
    pub sparsifier: SparsifierStats,
    /// Adjacency-array probes spent building the sparsifier (the
    /// sublinearity certificate: compare with `m`).
    pub probes: ProbeCounts,
    /// Augmentation statistics on the sparsifier.
    pub aug: AugStats,
}

/// Split a target ε into the per-stage ε' so that `(1+ε')² ≤ 1+ε`.
pub fn stage_eps(eps: f64) -> f64 {
    eps / 2.5
}

/// The per-stage [`SparsifierParams`] the pipeline actually marks with:
/// Δ re-aimed at [`stage_eps`] while keeping the caller's scaling choice
/// relative to the paper constant. Shared by the in-memory pipeline, the
/// out-of-core build, and the `delta` backend's size-bound claim, so all
/// three agree on the sparsifier they describe.
pub fn stage_params(params: &SparsifierParams) -> SparsifierParams {
    let eps_stage = stage_eps(params.eps);
    let scale = params.delta as f64
        / (20.0 * (params.beta as f64 / params.eps) * (24.0 / params.eps).ln()).ceil();
    SparsifierParams::scaled(params.beta, eps_stage, scale.max(1e-9))
}

/// Theorem 3.1: compute a `(1+ε)`-approximate MCM of `g` by sparsifying
/// and matching on the sparsifier. `params.eps` is the *end-to-end* target;
/// both stages run at [`stage_eps`].
///
/// Marking draws from deterministically seeded per-vertex RNG streams, so
/// the result depends only on `seed` — never on `threads`, which sets the
/// worker count for *every* stage (marking, CSR extraction, and greedy
/// matching). Rejects `threads` outside
/// `1..=`[`crate::sparsifier::MAX_THREADS`] with a [`ThreadCountError`].
///
/// # Examples
///
/// A clique has neighborhood independence β = 1 and a perfect matching;
/// the pipeline returns a valid matching of the *original* graph within
/// the end-to-end `(1+ε)` target:
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_core::pipeline::approx_mcm_via_sparsifier;
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(40); // exact MCM = 20
/// let params = SparsifierParams::practical(1, 0.5);
/// let result = approx_mcm_via_sparsifier(&g, &params, 7, 1).unwrap();
/// assert!(result.matching.is_valid_for(&g));
/// assert!(20.0 <= (1.0 + params.eps) * result.matching.len() as f64);
/// ```
pub fn approx_mcm_via_sparsifier(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
) -> Result<PipelineResult, ThreadCountError> {
    let mut scratch = PipelineScratch::new();
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, None, &mut scratch)?;
    Ok(scratch.into_result())
}

/// [`approx_mcm_via_sparsifier`] writing through a caller-owned
/// [`PipelineScratch`]: identical output (the one-shot entry points are
/// thin wrappers over this very path with a fresh arena), but every
/// buffer the run needs is reused from `scratch`. After a warm-up call on
/// a given input size, repeat calls perform zero heap allocations on the
/// sequential path. The returned reference points at
/// [`PipelineScratch::result`], which stays valid until the next run
/// through the same arena.
pub fn approx_mcm_via_sparsifier_with_scratch<'s>(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    scratch: &'s mut PipelineScratch,
) -> Result<&'s PipelineResult, ThreadCountError> {
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, None, scratch)?;
    Ok(scratch.result())
}

/// [`approx_mcm_via_sparsifier_with_scratch`] with unified work
/// accounting (see [`approx_mcm_via_sparsifier_metered`]; metering itself
/// allocates inside the meter, so the zero-allocation guarantee applies
/// to the unmetered scratch path).
pub fn approx_mcm_via_sparsifier_with_scratch_metered<'s>(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: &mut WorkMeter,
    scratch: &'s mut PipelineScratch,
) -> Result<&'s PipelineResult, ThreadCountError> {
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, Some(meter), scratch)?;
    Ok(scratch.result())
}

/// [`approx_mcm_via_sparsifier`] with unified work accounting: adjacency
/// probes, sampler RNG draws and overlay writes, sparsifier size, and
/// augmentation work are mirrored into `meter` under the shared
/// [`sparsimatch_obs::keys`] names, and per-stage wall-clock spans are
/// recorded under [`keys::STAGE_MARK`], [`keys::STAGE_EXTRACT`],
/// [`keys::STAGE_MATCH`], and [`keys::PIPELINE_TOTAL`]. The result is
/// identical to the unmetered pipeline for the same seed and any thread
/// count.
pub fn approx_mcm_via_sparsifier_metered(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: &mut WorkMeter,
) -> Result<PipelineResult, ThreadCountError> {
    let mut scratch = PipelineScratch::new();
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, Some(meter), &mut scratch)?;
    Ok(scratch.into_result())
}

/// The single pipeline body behind every entry point: runs the three
/// stages through `scratch` and leaves the result in
/// [`PipelineScratch::result`]. Warm-vs-cold byte identity is structural —
/// there is no second implementation to diverge.
fn approx_mcm_via_sparsifier_impl(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: Option<&mut WorkMeter>,
    scratch: &mut PipelineScratch,
) -> Result<(), ThreadCountError> {
    // The sequential fallbacks below bypass `mark_edges_parallel`'s
    // validation, so reject bad thread counts up front.
    if threads == 0 || threads > MAX_THREADS {
        return Err(ThreadCountError { requested: threads });
    }
    let total_start = Instant::now();
    let eps_stage = stage_eps(params.eps);
    let stage_params = stage_params(params);

    let PipelineScratch {
        sampler,
        indices,
        keep,
        ids,
        csr,
        searcher,
        result,
        ..
    } = scratch;

    // Stage 1: mark edges. Small inputs take the sequential in-place path
    // (same marks — per-vertex RNG streams don't care who draws them).
    let mark_start = Instant::now();
    let (mark_stats, rng_draws, overlay_writes) =
        if stage_threads(threads, g.num_edges(), MARK_PARALLEL_CUTOFF) == 1 {
            let summary =
                mark_edges_sequential_into(g, &stage_params, seed, sampler, indices, keep, ids);
            (summary.stats, summary.rng_draws, summary.overlay_writes)
        } else {
            let marks = mark_edges_parallel(g, &stage_params, seed, threads)?;
            *ids = marks.ids;
            (marks.stats, marks.rng_draws, marks.overlay_writes)
        };
    let mark_nanos = mark_start.elapsed().as_nanos();

    // Stage 2: extract the sparsifier CSR (byte-identical to the
    // sequential layout for any thread count). The in-place rebuild *is*
    // the sequential layout; the parallel builder is only worth spawning
    // when the host can actually run the workers.
    let extract_start = Instant::now();
    let sparse: &CsrGraph = if !host_has_parallelism() || threads == 1 {
        csr.rebuild_from_marked(g, ids)
    } else {
        csr.replace(from_marked_edges(g, ids, threads))
    };
    let extract_nanos = extract_start.elapsed().as_nanos();

    result.sparsifier = mark_stats;
    result.sparsifier.edges = sparse.num_edges();
    // The CSR fast path reads the graph directly, so probes are accounted
    // analytically: two degree reads per vertex (the low-degree check and
    // the one inside the sampler) and one adjacency-entry read per mark.
    result.probes = ProbeCounts {
        degree_probes: 2 * g.num_vertices() as u64,
        neighbor_probes: result.sparsifier.marks_placed as u64,
    };

    // Stage 3: greedy init + bounded augmentation on the sparsifier. The
    // parallel greedy computes the lexicographically-first maximal
    // matching — exactly the sequential scan's output — so the dispatch
    // only picks the cheaper route for the extracted size.
    let match_start = Instant::now();
    if stage_threads(threads, sparse.num_edges(), MATCH_PARALLEL_CUTOFF) == 1 {
        greedy_maximal_matching_into(sparse, &mut result.matching);
    } else {
        result.matching = greedy_maximal_matching_parallel(sparse, threads);
    }
    result.aug = eliminate_augmenting_paths_up_to_with(
        sparse,
        &mut result.matching,
        max_path_len_for_eps(eps_stage),
        searcher,
    );
    let match_nanos = match_start.elapsed().as_nanos();
    debug_assert!(
        result.matching.is_valid_for(g),
        "sparsifier must be a subgraph"
    );

    if let Some(meter) = meter {
        meter.add(keys::DEGREE_PROBES, result.probes.degree_probes);
        meter.add(keys::NEIGHBOR_PROBES, result.probes.neighbor_probes);
        meter.add(keys::SPARSIFIER_EDGES, result.sparsifier.edges as u64);
        meter.add(keys::RNG_DRAWS, rng_draws);
        meter.add(keys::OVERLAY_WRITES, overlay_writes);
        meter.add(keys::EDGE_VISITS, result.aug.edge_visits);
        meter.add(keys::AUG_SEARCHES, result.aug.searches as u64);
        meter.add(keys::AUGMENTATIONS, result.aug.augmentations as u64);
        meter.add_span(keys::STAGE_MARK, 1, mark_nanos);
        meter.add_span(keys::STAGE_EXTRACT, 1, extract_nanos);
        meter.add_span(keys::STAGE_MATCH, 1, match_nanos);
        meter.add_span(keys::PIPELINE_TOTAL, 1, total_start.elapsed().as_nanos());
    }

    scratch.note_high_water();
    Ok(())
}

/// The same pipeline on a pre-built sparsifier (used by the dynamic
/// scheme, which rebuilds the sparsifier itself under a work budget).
pub fn approx_mcm_on_sparsifier(sparse: &CsrGraph, eps: f64) -> (Matching, AugStats) {
    let init = greedy_maximal_matching(sparse);
    approx_maximum_matching_from(sparse, init, eps)
}

/// Convenience wrapper returning a [`crate::sparsifier::Sparsifier`] plus
/// the matching (CSR path with full stats, caller-supplied RNG stream, no
/// probe counting).
pub fn approx_mcm_with_stats(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> (crate::sparsifier::Sparsifier, Matching) {
    let eps_stage = stage_eps(params.eps);
    let s = crate::sparsifier::build_sparsifier(g, params, rng);
    let (m, _) = approx_mcm_on_sparsifier(&s.graph, eps_stage);
    (s, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        clique, clique_union, line_graph, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn stage_eps_composes() {
        for &eps in &[0.1f64, 0.3, 0.5, 0.9] {
            let s = stage_eps(eps);
            assert!((1.0 + s) * (1.0 + s) <= 1.0 + eps + 1e-12);
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique() {
        let g = clique(200);
        let p = SparsifierParams::practical(1, 0.3);
        let exact = maximum_matching(&g).len(); // 100
        for seed in [1u64, 2, 3] {
            let r = approx_mcm_via_sparsifier(&g, &p, seed, 1).unwrap();
            assert!(r.matching.is_valid_for(&g));
            assert!(
                r.matching.len() as f64 * 1.3 >= exact as f64,
                "{} vs {exact}",
                r.matching.len()
            );
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique_union() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 300,
                diversity: 3,
                clique_size: 60,
            },
            &mut rng,
        );
        let p = SparsifierParams::practical(3, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 2, 2).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn probes_sublinear_on_dense_graph() {
        let g = clique(500); // m ≈ 125k
        let p = SparsifierParams::practical(1, 0.5);
        let r = approx_mcm_via_sparsifier(&g, &p, 3, 2).unwrap();
        let m = g.num_edges() as u64;
        assert!(
            r.probes.total() < m / 2,
            "probes {} not sublinear in m {m}",
            r.probes.total()
        );
    }

    #[test]
    fn line_graph_pipeline() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = sparsimatch_graph::generators::gnp(60, 0.25, &mut rng);
        let g = line_graph(&base); // beta <= 2
        if g.num_edges() == 0 {
            return;
        }
        let p = SparsifierParams::practical(2, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 4, 1).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn unit_disk_pipeline() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(500, 1.0, 30.0),
            &mut rng,
        );
        let p = SparsifierParams::practical(5, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 5, 4).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn metered_pipeline_matches_unmetered() {
        let g = clique(120);
        let p = SparsifierParams::practical(1, 0.4);
        let mut meter = WorkMeter::new();
        let plain = approx_mcm_via_sparsifier(&g, &p, 7, 2).unwrap();
        let metered = approx_mcm_via_sparsifier_metered(&g, &p, 7, 2, &mut meter).unwrap();
        let e1: Vec<_> = plain.matching.pairs().collect();
        let e2: Vec<_> = metered.matching.pairs().collect();
        assert_eq!(e1, e2, "metering must not perturb the pipeline");
        assert_eq!(plain.probes, metered.probes);
        assert_eq!(meter.get(keys::DEGREE_PROBES), metered.probes.degree_probes);
        assert_eq!(
            meter.get(keys::NEIGHBOR_PROBES),
            metered.probes.neighbor_probes
        );
        assert_eq!(
            meter.get(keys::SPARSIFIER_EDGES),
            metered.sparsifier.edges as u64
        );
        assert_eq!(meter.get(keys::EDGE_VISITS), metered.aug.edge_visits);
        assert!(meter.get(keys::RNG_DRAWS) > 0);
        // Per-stage spans recorded exactly once each.
        for key in [
            keys::STAGE_MARK,
            keys::STAGE_EXTRACT,
            keys::STAGE_MATCH,
            keys::PIPELINE_TOTAL,
        ] {
            assert_eq!(meter.span_stats(key).count, 1, "span {key}");
        }
        let stage_sum = meter.span_stats(keys::STAGE_MARK).total_nanos
            + meter.span_stats(keys::STAGE_EXTRACT).total_nanos
            + meter.span_stats(keys::STAGE_MATCH).total_nanos;
        assert!(stage_sum <= meter.span_stats(keys::PIPELINE_TOTAL).total_nanos);
    }

    #[test]
    fn pipeline_is_thread_count_invariant() {
        let g = clique(150);
        let p = SparsifierParams::practical(1, 0.4);
        let reference = approx_mcm_via_sparsifier(&g, &p, 13, 1).unwrap();
        let e1: Vec<_> = reference.matching.pairs().collect();
        let mut m1 = WorkMeter::new();
        approx_mcm_via_sparsifier_metered(&g, &p, 13, 1, &mut m1).unwrap();
        let c1: Vec<_> = m1.counters().map(|(k, v)| (k.to_string(), v)).collect();
        for threads in [2usize, 4, 8] {
            let mut m = WorkMeter::new();
            let r = approx_mcm_via_sparsifier_metered(&g, &p, 13, threads, &mut m).unwrap();
            let e: Vec<_> = r.matching.pairs().collect();
            assert_eq!(e1, e, "threads = {threads}");
            assert_eq!(reference.probes, r.probes);
            let c: Vec<_> = m.counters().map(|(k, v)| (k.to_string(), v)).collect();
            assert_eq!(c1, c, "metered totals, threads = {threads}");
        }
        assert!(reference.matching.is_valid_for(&g));
        assert!(approx_mcm_via_sparsifier(&g, &p, 13, 0).is_err());
        assert!(approx_mcm_via_sparsifier(&g, &p, 13, 65).is_err());
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh() {
        // One arena dragged across families, sizes, seeds, and thread
        // counts must reproduce the one-shot wrapper exactly: matching
        // pairs, sparsifier stats, probes, and augmentation stats.
        let mut rng = StdRng::seed_from_u64(8);
        let graphs = [
            clique(150),
            clique_union(
                CliqueUnionConfig {
                    n: 200,
                    diversity: 3,
                    clique_size: 40,
                },
                &mut rng,
            ),
            sparsimatch_graph::generators::gnp(120, 0.1, &mut rng),
            sparsimatch_graph::csr::from_edges(0, []),
        ];
        let p = SparsifierParams::practical(2, 0.4);
        let mut scratch = crate::scratch::PipelineScratch::new();
        for (i, g) in graphs.iter().enumerate() {
            for seed in [3u64, 21] {
                for threads in [1usize, 2, 4, 8] {
                    let cold = approx_mcm_via_sparsifier(g, &p, seed, threads).unwrap();
                    let warm =
                        approx_mcm_via_sparsifier_with_scratch(g, &p, seed, threads, &mut scratch)
                            .unwrap();
                    assert_eq!(
                        cold.matching, warm.matching,
                        "graph {i} seed {seed} threads {threads}"
                    );
                    assert_eq!(cold.probes, warm.probes);
                    let s = (
                        cold.sparsifier.marks_placed,
                        cold.sparsifier.low_degree_vertices,
                        cold.sparsifier.edges,
                    );
                    let w = (
                        warm.sparsifier.marks_placed,
                        warm.sparsifier.low_degree_vertices,
                        warm.sparsifier.edges,
                    );
                    assert_eq!(s, w, "graph {i} seed {seed} threads {threads}");
                    let a = (
                        cold.aug.augmentations,
                        cold.aug.searches,
                        cold.aug.edge_visits,
                    );
                    let b = (
                        warm.aug.augmentations,
                        warm.aug.searches,
                        warm.aug.edge_visits,
                    );
                    assert_eq!(a, b, "graph {i} seed {seed} threads {threads}");
                }
            }
        }
        assert!(scratch.high_water_bytes() > 0);
        assert!(scratch.capacity_bytes() <= scratch.high_water_bytes());
    }

    #[test]
    fn scratch_metered_matches_one_shot_metered() {
        let g = clique(120);
        let p = SparsifierParams::practical(1, 0.4);
        let mut scratch = crate::scratch::PipelineScratch::new();
        let mut m_fresh = WorkMeter::new();
        let mut m_warm = WorkMeter::new();
        let fresh = approx_mcm_via_sparsifier_metered(&g, &p, 11, 1, &mut m_fresh).unwrap();
        // Warm the arena first so the metered run below is a steady-state
        // repeat, then compare counters (spans are wall clock — skipped).
        approx_mcm_via_sparsifier_with_scratch(&g, &p, 11, 1, &mut scratch).unwrap();
        let warm = approx_mcm_via_sparsifier_with_scratch_metered(
            &g,
            &p,
            11,
            1,
            &mut m_warm,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fresh.matching, warm.matching);
        let fresh_counters: Vec<_> = m_fresh
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let warm_counters: Vec<_> = m_warm.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(fresh_counters, warm_counters);
    }

    #[test]
    fn scratch_rejects_bad_thread_counts() {
        let g = clique(30);
        let p = SparsifierParams::practical(1, 0.5);
        let mut scratch = crate::scratch::PipelineScratch::new();
        assert!(approx_mcm_via_sparsifier_with_scratch(&g, &p, 1, 0, &mut scratch).is_err());
        assert!(approx_mcm_via_sparsifier_with_scratch(&g, &p, 1, 65, &mut scratch).is_err());
        // And the arena still works after a rejected call.
        assert!(approx_mcm_via_sparsifier_with_scratch(&g, &p, 1, 1, &mut scratch).is_ok());
    }

    #[test]
    fn with_stats_variant_agrees() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique(100);
        let p = SparsifierParams::practical(1, 0.4);
        let (s, m) = approx_mcm_with_stats(&g, &p, &mut rng);
        assert!(m.is_valid_for(&g));
        assert!(m.is_valid_for(&s.graph));
        assert!(s.stats.edges > 0);
    }
}
