//! Theorem 3.1 end-to-end: the `(1+ε)`-approximate maximum matching in
//! time sublinear in `|E(G)|`.
//!
//! Pipeline: (1) **mark** — every vertex marks Δ uniform incident edges
//! with the deterministic-time sampler, `O(n·Δ)` probes; (2) **extract** —
//! lay out the marked edges as the sparsifier CSR `G_Δ`; (3) **match** —
//! run greedy initialization plus the `(1+ε')`-approximate matching of
//! [`sparsimatch_matching::bounded_aug`] on the sparsifier, linear in
//! `|E(G_Δ)| = O(n·Δ)` per phase. The accuracy budget is split between the
//! two `(1+·)` factors so the end-to-end guarantee is `1 + ε`:
//! `(1 + ε/2.5)² ≤ 1 + ε` for `ε ≤ 1`.
//!
//! All three stages honor the requested thread count and are deterministic
//! for a fixed seed: the output is byte-identical for any accepted thread
//! count (marking uses per-vertex seeded RNG streams, extraction produces
//! the sequential CSR layout, and the parallel greedy computes the
//! lexicographically-first maximal matching).

use crate::params::SparsifierParams;
use crate::sparsifier::{mark_edges_parallel, SparsifierStats, ThreadCountError};
use rand::Rng;
use sparsimatch_graph::adjacency::ProbeCounts;
use sparsimatch_graph::csr::{from_marked_edges, CsrGraph};
use sparsimatch_matching::bounded_aug::{approx_maximum_matching_from, AugStats};
use sparsimatch_matching::greedy::{greedy_maximal_matching, greedy_maximal_matching_parallel};
use sparsimatch_matching::Matching;
use sparsimatch_obs::{keys, WorkMeter};
use std::time::Instant;

/// Everything the pipeline measured while running.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The `(1+ε)`-approximate matching — valid for the *original* graph.
    pub matching: Matching,
    /// Sparsifier construction statistics.
    pub sparsifier: SparsifierStats,
    /// Adjacency-array probes spent building the sparsifier (the
    /// sublinearity certificate: compare with `m`).
    pub probes: ProbeCounts,
    /// Augmentation statistics on the sparsifier.
    pub aug: AugStats,
}

/// Split a target ε into the per-stage ε' so that `(1+ε')² ≤ 1+ε`.
pub fn stage_eps(eps: f64) -> f64 {
    eps / 2.5
}

/// Theorem 3.1: compute a `(1+ε)`-approximate MCM of `g` by sparsifying
/// and matching on the sparsifier. `params.eps` is the *end-to-end* target;
/// both stages run at [`stage_eps`].
///
/// Marking draws from deterministically seeded per-vertex RNG streams, so
/// the result depends only on `seed` — never on `threads`, which sets the
/// worker count for *every* stage (marking, CSR extraction, and greedy
/// matching). Rejects `threads` outside
/// `1..=`[`crate::sparsifier::MAX_THREADS`] with a [`ThreadCountError`].
///
/// # Examples
///
/// A clique has neighborhood independence β = 1 and a perfect matching;
/// the pipeline returns a valid matching of the *original* graph within
/// the end-to-end `(1+ε)` target:
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_core::pipeline::approx_mcm_via_sparsifier;
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(40); // exact MCM = 20
/// let params = SparsifierParams::practical(1, 0.5);
/// let result = approx_mcm_via_sparsifier(&g, &params, 7, 1).unwrap();
/// assert!(result.matching.is_valid_for(&g));
/// assert!(20.0 <= (1.0 + params.eps) * result.matching.len() as f64);
/// ```
pub fn approx_mcm_via_sparsifier(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
) -> Result<PipelineResult, ThreadCountError> {
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, None)
}

/// [`approx_mcm_via_sparsifier`] with unified work accounting: adjacency
/// probes, sampler RNG draws and overlay writes, sparsifier size, and
/// augmentation work are mirrored into `meter` under the shared
/// [`sparsimatch_obs::keys`] names, and per-stage wall-clock spans are
/// recorded under [`keys::STAGE_MARK`], [`keys::STAGE_EXTRACT`],
/// [`keys::STAGE_MATCH`], and [`keys::PIPELINE_TOTAL`]. The result is
/// identical to the unmetered pipeline for the same seed and any thread
/// count.
pub fn approx_mcm_via_sparsifier_metered(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: &mut WorkMeter,
) -> Result<PipelineResult, ThreadCountError> {
    approx_mcm_via_sparsifier_impl(g, params, seed, threads, Some(meter))
}

fn approx_mcm_via_sparsifier_impl(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: Option<&mut WorkMeter>,
) -> Result<PipelineResult, ThreadCountError> {
    let total_start = Instant::now();
    let eps_stage = stage_eps(params.eps);
    // Size Δ for the stage accuracy, keeping the caller's scaling choice
    // relative to the paper constant.
    let scale = params.delta as f64
        / (20.0 * (params.beta as f64 / params.eps) * (24.0 / params.eps).ln()).ceil();
    let stage_params = SparsifierParams::scaled(params.beta, eps_stage, scale.max(1e-9));

    // Stage 1: mark edges across `threads` workers.
    let mark_start = Instant::now();
    let marks = mark_edges_parallel(g, &stage_params, seed, threads)?;
    let mark_nanos = mark_start.elapsed().as_nanos();

    // Stage 2: extract the sparsifier CSR (byte-identical to the
    // sequential layout for any thread count).
    let extract_start = Instant::now();
    let sparse = from_marked_edges(g, &marks.ids, threads);
    let extract_nanos = extract_start.elapsed().as_nanos();

    let mut sparsifier = marks.stats;
    sparsifier.edges = sparse.num_edges();
    // The CSR fast path reads the graph directly, so probes are accounted
    // analytically: two degree reads per vertex (the low-degree check and
    // the one inside the sampler) and one adjacency-entry read per mark.
    let probes = ProbeCounts {
        degree_probes: 2 * g.num_vertices() as u64,
        neighbor_probes: sparsifier.marks_placed as u64,
    };

    // Stage 3: greedy init + bounded augmentation on the sparsifier.
    let match_start = Instant::now();
    let init = greedy_maximal_matching_parallel(&sparse, threads);
    let (matching, aug) = approx_maximum_matching_from(&sparse, init, eps_stage);
    let match_nanos = match_start.elapsed().as_nanos();
    debug_assert!(matching.is_valid_for(g), "sparsifier must be a subgraph");

    if let Some(meter) = meter {
        meter.add(keys::DEGREE_PROBES, probes.degree_probes);
        meter.add(keys::NEIGHBOR_PROBES, probes.neighbor_probes);
        meter.add(keys::SPARSIFIER_EDGES, sparsifier.edges as u64);
        meter.add(keys::RNG_DRAWS, marks.rng_draws);
        meter.add(keys::OVERLAY_WRITES, marks.overlay_writes);
        meter.add(keys::EDGE_VISITS, aug.edge_visits);
        meter.add(keys::AUG_SEARCHES, aug.searches as u64);
        meter.add(keys::AUGMENTATIONS, aug.augmentations as u64);
        meter.add_span(keys::STAGE_MARK, 1, mark_nanos);
        meter.add_span(keys::STAGE_EXTRACT, 1, extract_nanos);
        meter.add_span(keys::STAGE_MATCH, 1, match_nanos);
        meter.add_span(keys::PIPELINE_TOTAL, 1, total_start.elapsed().as_nanos());
    }

    Ok(PipelineResult {
        matching,
        sparsifier,
        probes,
        aug,
    })
}

/// The same pipeline on a pre-built sparsifier (used by the dynamic
/// scheme, which rebuilds the sparsifier itself under a work budget).
pub fn approx_mcm_on_sparsifier(sparse: &CsrGraph, eps: f64) -> (Matching, AugStats) {
    let init = greedy_maximal_matching(sparse);
    approx_maximum_matching_from(sparse, init, eps)
}

/// Convenience wrapper returning a [`crate::sparsifier::Sparsifier`] plus
/// the matching (CSR path with full stats, caller-supplied RNG stream, no
/// probe counting).
pub fn approx_mcm_with_stats(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> (crate::sparsifier::Sparsifier, Matching) {
    let eps_stage = stage_eps(params.eps);
    let s = crate::sparsifier::build_sparsifier(g, params, rng);
    let (m, _) = approx_mcm_on_sparsifier(&s.graph, eps_stage);
    (s, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        clique, clique_union, line_graph, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn stage_eps_composes() {
        for &eps in &[0.1f64, 0.3, 0.5, 0.9] {
            let s = stage_eps(eps);
            assert!((1.0 + s) * (1.0 + s) <= 1.0 + eps + 1e-12);
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique() {
        let g = clique(200);
        let p = SparsifierParams::practical(1, 0.3);
        let exact = maximum_matching(&g).len(); // 100
        for seed in [1u64, 2, 3] {
            let r = approx_mcm_via_sparsifier(&g, &p, seed, 1).unwrap();
            assert!(r.matching.is_valid_for(&g));
            assert!(
                r.matching.len() as f64 * 1.3 >= exact as f64,
                "{} vs {exact}",
                r.matching.len()
            );
        }
    }

    #[test]
    fn end_to_end_accuracy_on_clique_union() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = clique_union(
            CliqueUnionConfig {
                n: 300,
                diversity: 3,
                clique_size: 60,
            },
            &mut rng,
        );
        let p = SparsifierParams::practical(3, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 2, 2).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn probes_sublinear_on_dense_graph() {
        let g = clique(500); // m ≈ 125k
        let p = SparsifierParams::practical(1, 0.5);
        let r = approx_mcm_via_sparsifier(&g, &p, 3, 2).unwrap();
        let m = g.num_edges() as u64;
        assert!(
            r.probes.total() < m / 2,
            "probes {} not sublinear in m {m}",
            r.probes.total()
        );
    }

    #[test]
    fn line_graph_pipeline() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = sparsimatch_graph::generators::gnp(60, 0.25, &mut rng);
        let g = line_graph(&base); // beta <= 2
        if g.num_edges() == 0 {
            return;
        }
        let p = SparsifierParams::practical(2, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 4, 1).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn unit_disk_pipeline() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(500, 1.0, 30.0),
            &mut rng,
        );
        let p = SparsifierParams::practical(5, 0.4);
        let exact = maximum_matching(&g).len();
        let r = approx_mcm_via_sparsifier(&g, &p, 5, 4).unwrap();
        assert!(r.matching.len() as f64 * 1.4 >= exact as f64);
    }

    #[test]
    fn metered_pipeline_matches_unmetered() {
        let g = clique(120);
        let p = SparsifierParams::practical(1, 0.4);
        let mut meter = WorkMeter::new();
        let plain = approx_mcm_via_sparsifier(&g, &p, 7, 2).unwrap();
        let metered = approx_mcm_via_sparsifier_metered(&g, &p, 7, 2, &mut meter).unwrap();
        let e1: Vec<_> = plain.matching.pairs().collect();
        let e2: Vec<_> = metered.matching.pairs().collect();
        assert_eq!(e1, e2, "metering must not perturb the pipeline");
        assert_eq!(plain.probes, metered.probes);
        assert_eq!(meter.get(keys::DEGREE_PROBES), metered.probes.degree_probes);
        assert_eq!(
            meter.get(keys::NEIGHBOR_PROBES),
            metered.probes.neighbor_probes
        );
        assert_eq!(
            meter.get(keys::SPARSIFIER_EDGES),
            metered.sparsifier.edges as u64
        );
        assert_eq!(meter.get(keys::EDGE_VISITS), metered.aug.edge_visits);
        assert!(meter.get(keys::RNG_DRAWS) > 0);
        // Per-stage spans recorded exactly once each.
        for key in [
            keys::STAGE_MARK,
            keys::STAGE_EXTRACT,
            keys::STAGE_MATCH,
            keys::PIPELINE_TOTAL,
        ] {
            assert_eq!(meter.span_stats(key).count, 1, "span {key}");
        }
        let stage_sum = meter.span_stats(keys::STAGE_MARK).total_nanos
            + meter.span_stats(keys::STAGE_EXTRACT).total_nanos
            + meter.span_stats(keys::STAGE_MATCH).total_nanos;
        assert!(stage_sum <= meter.span_stats(keys::PIPELINE_TOTAL).total_nanos);
    }

    #[test]
    fn pipeline_is_thread_count_invariant() {
        let g = clique(150);
        let p = SparsifierParams::practical(1, 0.4);
        let reference = approx_mcm_via_sparsifier(&g, &p, 13, 1).unwrap();
        let e1: Vec<_> = reference.matching.pairs().collect();
        let mut m1 = WorkMeter::new();
        approx_mcm_via_sparsifier_metered(&g, &p, 13, 1, &mut m1).unwrap();
        let c1: Vec<_> = m1.counters().map(|(k, v)| (k.to_string(), v)).collect();
        for threads in [2usize, 4, 8] {
            let mut m = WorkMeter::new();
            let r = approx_mcm_via_sparsifier_metered(&g, &p, 13, threads, &mut m).unwrap();
            let e: Vec<_> = r.matching.pairs().collect();
            assert_eq!(e1, e, "threads = {threads}");
            assert_eq!(reference.probes, r.probes);
            let c: Vec<_> = m.counters().map(|(k, v)| (k.to_string(), v)).collect();
            assert_eq!(c1, c, "metered totals, threads = {threads}");
        }
        assert!(reference.matching.is_valid_for(&g));
        assert!(approx_mcm_via_sparsifier(&g, &p, 13, 0).is_err());
        assert!(approx_mcm_via_sparsifier(&g, &p, 13, 65).is_err());
    }

    #[test]
    fn with_stats_variant_agrees() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique(100);
        let p = SparsifierParams::practical(1, 0.4);
        let (s, m) = approx_mcm_with_stats(&g, &p, &mut rng);
        assert!(m.is_valid_for(&g));
        assert!(m.is_valid_for(&s.graph));
        assert!(s.stats.edges > 0);
    }
}
