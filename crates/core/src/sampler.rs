//! Δ-out-of-deg uniform sampling without replacement over *read-only*
//! adjacency arrays, in deterministic O(Δ) time per vertex.
//!
//! This is the Section 3.1 construction. A naive Fisher–Yates shuffle
//! would swap entries of the adjacency array, but the sublinear model
//! grants only read access. Instead we keep, per vertex, a positions
//! overlay `pos_v` in an O(1)-initialization
//! [`SparseArray`]: `pos_v[i] = j` means
//! "the element currently at logical position `i` is the one physically
//! stored at index `j`", with untouched slots meaning identity. Each
//! sampling step reads one uniform position, resolves it through the
//! overlay, then emulates the Fisher–Yates swap by writing two overlay
//! slots — O(1) work and **zero** writes to the input.
//!
//! One overlay is shared across all vertices and logically cleared in O(1)
//! between vertices, so the whole sparsifier is sampled with a single
//! allocation of size `max_degree`.

use rand::Rng;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::ids::VertexId;
use sparsimatch_graph::sparse_array::SparseArray;
use sparsimatch_obs::{keys, WorkMeter};

/// Sentinel for "identity" in the positions overlay.
const IDENTITY: u32 = u32::MAX;

/// A reusable sampler of uniform index subsets.
///
/// Besides the overlay it keeps two cumulative work counters — RNG draws
/// and overlay writes — across its whole lifetime (the per-vertex
/// [`SparseArray::writes`] count resets with each logical clear). These
/// feed the unified [`sparsimatch_obs::WorkMeter`] accounting via
/// [`PosArraySampler::mirror_into`].
pub struct PosArraySampler {
    pos: SparseArray<u32>,
    rng_draws: u64,
    overlay_writes: u64,
}

impl PosArraySampler {
    /// A sampler able to handle degrees up to `max_degree`.
    pub fn new(max_degree: usize) -> Self {
        PosArraySampler {
            pos: SparseArray::new(max_degree, IDENTITY),
            rng_draws: 0,
            overlay_writes: 0,
        }
    }

    /// Grow the overlay to handle degrees up to `max_degree`; no-op when
    /// it is already large enough. The scratch-reuse path: a sampler kept
    /// across pipeline runs is re-sized here instead of reconstructed, so
    /// repeat solves on same-or-smaller graphs allocate nothing.
    pub fn ensure_capacity(&mut self, max_degree: usize) {
        self.pos.ensure_len(max_degree);
    }

    /// Heap bytes of overlay capacity currently held (an estimate —
    /// element sizes, not allocator overhead). Feeds the scratch arenas'
    /// high-water accounting.
    pub fn capacity_bytes(&self) -> usize {
        self.pos.capacity_bytes()
    }

    /// Total uniform draws taken from the RNG since construction.
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    /// Total writes into the positions overlay since construction.
    pub fn overlay_writes(&self) -> u64 {
        self.overlay_writes
    }

    /// Mirror the cumulative work counters into a [`WorkMeter`].
    pub fn mirror_into(&self, meter: &mut WorkMeter) {
        meter.add(keys::RNG_DRAWS, self.rng_draws);
        meter.add(keys::OVERLAY_WRITES, self.overlay_writes);
    }

    /// Draw `k` distinct uniform indices from `0..deg` into `out`
    /// (clearing it first). Deterministic O(k) time. If `k ≥ deg`, returns
    /// all of `0..deg`.
    pub fn sample_indices(&mut self, deg: usize, k: usize, rng: &mut impl Rng, out: &mut Vec<u32>) {
        out.clear();
        if k >= deg {
            out.extend(0..deg as u32);
            return;
        }
        debug_assert!(deg <= self.pos.len(), "sampler sized too small");
        self.pos.clear(); // O(1) logical re-initialization
        for t in 0..k {
            let limit = deg - t; // sampling from logical prefix [0, limit)
            let i = rng.random_range(0..limit);
            self.rng_draws += 1;
            let picked = self.resolve(i as u32);
            out.push(picked);
            // Emulate swap(arr[i], arr[limit-1]).
            let last_val = self.resolve((limit - 1) as u32);
            self.pos.set(i, last_val);
            self.overlay_writes += 1;
        }
    }

    #[inline]
    fn resolve(&self, i: u32) -> u32 {
        let v = *self.pos.get(i as usize);
        if v == IDENTITY {
            i
        } else {
            v
        }
    }
}

/// The per-vertex mark set of the Section 3.1 construction: all incident
/// edges when `deg(v) ≤ mark_cap`, otherwise `delta` uniform ones.
/// Returns adjacency-array *indices* (resolve through the oracle to get
/// neighbors/edges).
pub fn mark_indices_for_vertex(
    g: &impl AdjacencyOracle,
    v: VertexId,
    delta: usize,
    mark_cap: usize,
    sampler: &mut PosArraySampler,
    rng: &mut impl Rng,
    out: &mut Vec<u32>,
) {
    let deg = g.degree(v);
    if deg <= mark_cap {
        out.clear();
        out.extend(0..deg as u32);
    } else {
        sampler.sample_indices(deg, delta, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn returns_all_when_k_exceeds_deg() {
        let mut s = PosArraySampler::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        s.sample_indices(5, 10, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn samples_are_distinct_and_in_range() {
        let mut s = PosArraySampler::new(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        for _ in 0..200 {
            s.sample_indices(1000, 50, &mut rng, &mut out);
            assert_eq!(out.len(), 50);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 50, "duplicates drawn");
            assert!(sorted.iter().all(|&i| (i as usize) < 1000));
        }
    }

    #[test]
    fn uniform_marginals() {
        // Each index should be picked with probability k/deg; chi-square
        // style sanity bound on a long run.
        let deg = 20;
        let k = 5;
        let trials = 40_000;
        let mut counts = vec![0u32; deg];
        let mut s = PosArraySampler::new(deg);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        for _ in 0..trials {
            s.sample_indices(deg, k, &mut rng, &mut out);
            for &i in &out {
                counts[i as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / deg as f64; // 10_000
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "index {i}: count {c}, expected ~{expected}");
        }
    }

    #[test]
    fn pairwise_coverage() {
        // Every pair should be jointly sampled with the hypergeometric
        // rate; cheap check that no pair is starved (catches overlay bugs
        // that only bite on collisions).
        let deg = 8;
        let k = 3;
        let trials = 30_000;
        let mut pair_counts = vec![0u32; deg * deg];
        let mut s = PosArraySampler::new(deg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        for _ in 0..trials {
            s.sample_indices(deg, k, &mut rng, &mut out);
            for a in 0..out.len() {
                for b in (a + 1)..out.len() {
                    let (x, y) = (out[a].min(out[b]) as usize, out[a].max(out[b]) as usize);
                    pair_counts[x * deg + y] += 1;
                }
            }
        }
        // P[pair] = C(deg-2, k-2)/C(deg,k) = k(k-1)/(deg(deg-1)) = 6/56.
        let expected = trials as f64 * (k * (k - 1)) as f64 / (deg * (deg - 1)) as f64;
        for x in 0..deg {
            for y in (x + 1)..deg {
                let c = pair_counts[x * deg + y] as f64;
                assert!(
                    (c - expected).abs() / expected < 0.12,
                    "pair ({x},{y}): {c} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn deterministic_work_bound() {
        // The overlay must touch at most 2k slots per vertex regardless of
        // the degree: that is the whole point of the sparse array.
        let mut s = PosArraySampler::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        s.sample_indices(1_000_000, 32, &mut rng, &mut out);
        assert!(s.pos.writes() <= 64, "writes = {}", s.pos.writes());
    }

    #[test]
    fn cumulative_counters_track_draws_and_writes() {
        let mut s = PosArraySampler::new(100);
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = Vec::new();
        s.sample_indices(100, 10, &mut rng, &mut out);
        s.sample_indices(100, 10, &mut rng, &mut out);
        // One draw and one overlay write per selected index, cumulative
        // across calls.
        assert_eq!(s.rng_draws(), 20);
        assert_eq!(s.overlay_writes(), 20);
        // The take-all path needs no randomness.
        s.sample_indices(5, 10, &mut rng, &mut out);
        assert_eq!(s.rng_draws(), 20);
        let mut meter = WorkMeter::new();
        s.mirror_into(&mut meter);
        assert_eq!(meter.get(keys::RNG_DRAWS), 20);
        assert_eq!(meter.get(keys::OVERLAY_WRITES), 20);
    }

    #[test]
    fn mark_indices_low_degree_takes_all() {
        use sparsimatch_graph::generators::star;
        let g = star(6); // center degree 5
        let mut s = PosArraySampler::new(8);
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        mark_indices_for_vertex(&g, VertexId(0), 2, 4, &mut s, &mut rng, &mut out);
        assert_eq!(out.len(), 2, "deg 5 > cap 4: sample delta = 2");
        mark_indices_for_vertex(&g, VertexId(0), 2, 5, &mut s, &mut rng, &mut out);
        assert_eq!(out.len(), 5, "deg 5 <= cap 5: take all");
    }
}
