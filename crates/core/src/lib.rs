#![deny(missing_docs)]

//! The SPAA'20 matching sparsifier `G_Δ` and its applications.
//!
//! Given a graph `G` of neighborhood independence number β and a target
//! accuracy ε, every vertex marks `Δ = Θ((β/ε)·log(1/ε))` uniformly random
//! incident edges (all of them if its degree is below the threshold); the
//! marked subgraph `G_Δ` is, with high probability, a `(1+ε)`-matching
//! sparsifier: `|MCM(G)| ≤ (1+ε)·|MCM(G_Δ)|` (Theorem 2.1).
//!
//! Modules:
//!
//! * [`params`] — Δ from (β, ε): the paper's proof constant and practical
//!   scalings; the validity window `β = O(εn/log n)`.
//! * [`sampler`] — Δ-out-of-deg sampling without replacement over
//!   *read-only* adjacency arrays in deterministic O(Δ) time per vertex,
//!   via the `pos_v` sparse-array emulation of Section 3.1.
//! * [`sparsifier`] — the `G_Δ` construction with size/arboricity
//!   accounting (Observations 2.10 and 2.12).
//! * [`solomon`] — Solomon's ITCS'18 bounded-degree sparsifier for
//!   bounded-arboricity graphs (deterministic, mutual marking).
//! * [`composed`] — the two-round composition `G̃_Δ` of Section 3.2:
//!   bounded-β graph → low-arboricity `G_Δ` → bounded-degree `G̃_Δ`.
//! * [`pipeline`] — Theorem 3.1 end-to-end: sparsify then run a `(1+ε)`
//!   matching algorithm, in time sublinear in `|E(G)|`.
//! * [`stream_build`] — the same construction out of core: two passes
//!   over a lex-sorted edge stream build a byte-identical `G_Δ` in
//!   `O(n + |E(G_Δ)|)` resident memory, never materializing `G`.
//! * [`scratch`] — reusable scratch arenas giving the repeat-solve paths
//!   (dynamic rebuilds, check sweeps, benchmark loops) a zero-allocation
//!   steady state.
//! * [`lower_bounds`] — the paper's negative results as executable
//!   instances: deterministic marking fails (Lemma 2.13) and exact
//!   preservation fails (Observation 2.14).
//! * [`backend`] — the [`backend::MatchingSparsifier`] contract over
//!   interchangeable sparsifier backends, with the `G_Δ` pipeline as the
//!   `delta` backend (byte-identical to the direct entry points).
//! * [`edcs`] — the Assadi–Bernstein edge-degree constrained subgraph
//!   (arXiv:1811.02009), the second backend: deterministic, smaller for
//!   comparable degree budgets, `3/2 + O(λ)` ratio floor.

pub mod backend;
pub mod composed;
pub mod edcs;
pub mod lower_bounds;
pub mod params;
pub mod pipeline;
pub mod sampler;
pub mod scratch;
pub mod solomon;
pub mod sparsifier;
pub mod stream_build;

pub use backend::{BackendKind, DeltaBackend, EdcsBackend, MatchingSparsifier};
pub use edcs::{build_edcs, EdcsParams, EdcsParamsError, EdcsStats};
pub use params::SparsifierParams;
pub use pipeline::{
    approx_mcm_via_sparsifier, approx_mcm_via_sparsifier_metered,
    approx_mcm_via_sparsifier_with_scratch, approx_mcm_via_sparsifier_with_scratch_metered,
    PipelineResult,
};
pub use scratch::{OracleRebuildScratch, PipelineScratch};
pub use sparsifier::{
    build_sparsifier, build_sparsifier_metered, build_sparsifier_parallel,
    build_sparsifier_parallel_metered, Sparsifier, SparsifierStats, ThreadCountError, MAX_THREADS,
};
pub use stream_build::{approx_mcm_streamed, build_sparsifier_streamed, StreamBuildReport};
