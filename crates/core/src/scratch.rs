//! Reusable scratch arenas for the repeat-solve hot paths.
//!
//! Every buffer the pipeline touches per run — the sampler overlay, the
//! mark/index buffers, the sparsifier CSR arrays, the blossom searcher,
//! and the result matching itself — lives here with *clear-not-drop*
//! semantics: a buffer is logically emptied between runs but its heap
//! capacity is retained. Callers that solve repeatedly (the dynamic
//! matcher, the check harness's seed sweeps, the benchmark loops) hold one
//! arena and hand it to
//! [`crate::pipeline::approx_mcm_via_sparsifier_with_scratch`]; after the
//! first (cold) call on a given input size, subsequent warm calls perform
//! **zero** heap allocations on the sequential path (pinned by the
//! `alloc-count`-gated test suite).
//!
//! The one-shot entry points are thin wrappers that build a fresh arena
//! per call, so warm and cold runs execute the *same* code path and are
//! byte-identical by construction.

use crate::pipeline::PipelineResult;
use crate::sampler::PosArraySampler;
use sparsimatch_graph::adjacency::ProbeCounts;
use sparsimatch_graph::csr::CsrScratch;
use sparsimatch_graph::ids::{EdgeId, VertexId};
use sparsimatch_matching::blossom::BlossomSearcher;
use sparsimatch_matching::bounded_aug::AugStats;
use sparsimatch_matching::Matching;

/// The pipeline's reusable buffer bundle. See the [module docs](self).
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_core::pipeline::approx_mcm_via_sparsifier_with_scratch;
/// use sparsimatch_core::scratch::PipelineScratch;
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(40);
/// let params = SparsifierParams::practical(1, 0.5);
/// let mut scratch = PipelineScratch::new();
/// let warm_up = approx_mcm_via_sparsifier_with_scratch(&g, &params, 7, 1, &mut scratch)
///     .unwrap()
///     .matching
///     .len();
/// // Warm repeat: same output, no allocations on the sequential path.
/// let warm = approx_mcm_via_sparsifier_with_scratch(&g, &params, 7, 1, &mut scratch).unwrap();
/// assert_eq!(warm.matching.len(), warm_up);
/// assert!(scratch.high_water_bytes() > 0);
/// ```
pub struct PipelineScratch {
    /// Mark stage: the Δ-out-of-deg sampling overlay.
    pub(crate) sampler: PosArraySampler,
    /// Mark stage: per-vertex sampled adjacency indices.
    pub(crate) indices: Vec<u32>,
    /// Mark stage: raw marked edge ids before sort/dedup.
    pub(crate) keep: Vec<u32>,
    /// Mark stage output: sorted, deduplicated marked edge ids.
    pub(crate) ids: Vec<EdgeId>,
    /// Extract stage: sparsifier CSR arrays plus degree-count and
    /// scatter-cursor buffers.
    pub(crate) csr: CsrScratch,
    /// Match stage: blossom searcher (frontier queue, parent/base/root
    /// forests).
    pub(crate) searcher: BlossomSearcher,
    /// EDCS backend: per-edge H-membership flags (EdgeId-indexed).
    pub(crate) edcs_in: Vec<bool>,
    /// EDCS backend: per-vertex H-degrees.
    pub(crate) edcs_deg: Vec<u32>,
    /// The result slot, including the reusable output matching.
    pub(crate) result: PipelineResult,
    /// Largest capacity footprint observed at the end of any run.
    pub(crate) high_water: usize,
}

impl PipelineScratch {
    /// An empty arena. All buffers start empty and grow on first use;
    /// construction allocates nothing beyond the CSR scratch's
    /// one-element offsets array.
    pub fn new() -> Self {
        PipelineScratch {
            sampler: PosArraySampler::new(0),
            indices: Vec::new(),
            keep: Vec::new(),
            ids: Vec::new(),
            csr: CsrScratch::new(),
            searcher: BlossomSearcher::new(&Matching::new(0)),
            edcs_in: Vec::new(),
            edcs_deg: Vec::new(),
            result: PipelineResult {
                matching: Matching::new(0),
                sparsifier: Default::default(),
                probes: ProbeCounts::default(),
                aug: AugStats::default(),
            },
            high_water: 0,
        }
    }

    /// Logically empty every buffer, keeping capacities (and the
    /// high-water statistic). Runs never require this — each stage resets
    /// the state it reads — but it lets a long-lived holder drop stale
    /// *contents* (e.g. the previous result) without giving up warmth.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.keep.clear();
        self.ids.clear();
        self.csr.clear();
        self.edcs_in.clear();
        self.edcs_deg.clear();
        self.result.matching.reset(0);
        self.result.sparsifier = Default::default();
        self.result.probes = ProbeCounts::default();
        self.result.aug = AugStats::default();
    }

    /// The result of the most recent pipeline run through this arena.
    pub fn result(&self) -> &PipelineResult {
        &self.result
    }

    /// Consume the arena, keeping only the last result (the one-shot
    /// wrapper path).
    pub fn into_result(self) -> PipelineResult {
        self.result
    }

    /// Heap bytes of buffer capacity currently held across all components
    /// (an estimate — element sizes, not allocator overhead).
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sampler.capacity_bytes()
            + (self.indices.capacity() + self.keep.capacity()) * size_of::<u32>()
            + self.ids.capacity() * size_of::<EdgeId>()
            + self.csr.capacity_bytes()
            + self.searcher.capacity_bytes()
            + self.edcs_in.capacity()
            + self.edcs_deg.capacity() * size_of::<u32>()
    }

    /// Largest [`PipelineScratch::capacity_bytes`] observed at the end of
    /// any run — the arena's steady-state memory footprint.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Record the current capacity footprint into the high-water mark.
    /// Called by the pipeline at the end of every run.
    pub(crate) fn note_high_water(&mut self) {
        self.high_water = self.high_water.max(self.capacity_bytes());
    }
}

impl Default for PipelineScratch {
    fn default() -> Self {
        PipelineScratch::new()
    }
}

/// Reusable buffers for the dynamic scheme's oracle-path rebuilds
/// ([`mark_edges_oracle`](crate::sparsifier::mark_edges_oracle)-style
/// marking over an adjacency-list graph, then greedy + bounded
/// augmentation). One lives inside each
/// `sparsimatch_dynamic::DynamicMatcher`; fields are public because the
/// dynamic crate drives the stages itself under its work budget.
pub struct OracleRebuildScratch {
    /// Sampling overlay, grown to the largest degree seen so far.
    pub sampler: PosArraySampler,
    /// Per-vertex sampled adjacency indices.
    pub indices: Vec<u32>,
    /// Marked endpoint pairs accumulated across the rebuild.
    pub marks: Vec<(VertexId, VertexId)>,
    /// Blossom searcher reused across the augmentation phases.
    pub searcher: BlossomSearcher,
}

impl OracleRebuildScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        OracleRebuildScratch {
            sampler: PosArraySampler::new(0),
            indices: Vec::new(),
            marks: Vec::new(),
            searcher: BlossomSearcher::new(&Matching::new(0)),
        }
    }

    /// Logically empty the buffers, keeping capacities.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.marks.clear();
    }
}

impl Default for OracleRebuildScratch {
    fn default() -> Self {
        OracleRebuildScratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_reports_empty_footprint() {
        let s = PipelineScratch::new();
        // A fresh CsrScratch holds the one-element offsets vector; every
        // other component starts at zero capacity.
        assert!(s.capacity_bytes() <= 64);
        assert_eq!(s.high_water_bytes(), 0);
        assert_eq!(s.result().matching.len(), 0);
    }

    #[test]
    fn clear_keeps_high_water() {
        let mut s = PipelineScratch::new();
        s.ids.extend((0..100).map(EdgeId));
        s.note_high_water();
        let hw = s.high_water_bytes();
        assert!(hw >= 400);
        s.clear();
        assert!(s.ids.is_empty());
        assert_eq!(s.high_water_bytes(), hw, "clear drops contents, not stats");
    }
}
