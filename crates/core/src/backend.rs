//! The backend family: a common contract over interchangeable matching
//! sparsifiers.
//!
//! A *backend* packages one sparsification scheme — how to build the
//! sparse subgraph `H ⊆ G`, in memory or from an edge stream — together
//! with the two quantitative **claims** its theory makes: a worst-case
//! size bound on `|E(H)|` and an end-to-end approximation ratio for the
//! matching computed through it. The claims are load-bearing, not
//! documentation: the `backend` check oracle certifies both against the
//! exact blossom solver per sweep seed, so a backend that violates its
//! own claim is a shrinkable counterexample, and `results/RESULTS.md`
//! only races backends that passed that conformance gate first.
//!
//! Two backends ship:
//!
//! - [`DeltaBackend`] (`delta`): the paper's `G_Δ` pipeline, verbatim —
//!   every solve delegates to the exact same entry points the
//!   un-traited API exposes, so results are byte-identical to
//!   [`approx_mcm_via_sparsifier`](crate::pipeline::approx_mcm_via_sparsifier)
//!   (pinned by fingerprint test across thread counts). Claims: `1+ε`
//!   ratio (Theorem 3.1), size `n · 2Δ_stage` where `Δ_stage` comes from
//!   [`stage_params`] — the Δ the pipeline *actually* marks with.
//! - [`EdcsBackend`] (`edcs`): the Assadi–Bernstein edge-degree
//!   constrained subgraph (arXiv:1811.02009). Claims: `(3/2)(1+λ)(1+ε)`
//!   ratio (the `3/2` is tight even for bipartite graphs,
//!   arXiv:2406.07630), size `n(β−1)/2`. Deterministic and
//!   randomness-free, but construction reads every edge — the opposite
//!   trade-off from `G_Δ`'s sublinear randomized marking.

use crate::edcs::{
    approx_mcm_edcs_streamed, approx_mcm_via_edcs_with_scratch,
    approx_mcm_via_edcs_with_scratch_metered, build_edcs, EdcsParams,
};
use crate::params::SparsifierParams;
use crate::pipeline::{
    approx_mcm_via_sparsifier_with_scratch, approx_mcm_via_sparsifier_with_scratch_metered,
    stage_params, PipelineResult,
};
use crate::scratch::PipelineScratch;
use crate::sparsifier::{build_sparsifier_parallel, ThreadCountError};
use crate::stream_build::{approx_mcm_streamed, StreamBuildReport};
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::edge_stream::EdgeStreamSource;
use sparsimatch_graph::io::ReadError;
use sparsimatch_obs::WorkMeter;

/// Which backend to run — the value the CLI's `--backend` flag, the
/// serve wire protocol's `backend` field, and the check harness's
/// `--backend` filter all parse into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's `G_Δ` sparsifier pipeline.
    Delta,
    /// The Assadi–Bernstein edge-degree constrained subgraph.
    Edcs,
}

impl BackendKind {
    /// Every backend, in report order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Delta, BackendKind::Edcs];

    /// The stable wire/CLI name (`"delta"` / `"edcs"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Delta => "delta",
            BackendKind::Edcs => "edcs",
        }
    }

    /// Parse a wire/CLI name. Returns `None` for anything but the exact
    /// lowercase names, so callers produce their own typed errors.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "delta" => Some(BackendKind::Delta),
            "edcs" => Some(BackendKind::Edcs),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A matching sparsifier backend: build `H ⊆ G`, solve through it, and
/// state the claims the check oracle certifies. See the
/// [module docs](self) for the contract's role.
///
/// Object-safe: the CLI, serve engine, and benchmark all hold
/// `&dyn MatchingSparsifier` and dispatch per run.
pub trait MatchingSparsifier {
    /// The backend's stable name, as reported in benchmark JSON and
    /// counterexample documents (`"delta"` / `"edcs"`).
    fn name(&self) -> &'static str;

    /// A one-line human-readable parameter summary for reports, e.g.
    /// `"beta=2 eps=0.5 delta=1188"`.
    fn params_summary(&self) -> String;

    /// The claimed end-to-end approximation ratio `r ≥ 1`: the backend
    /// asserts `|M*| ≤ r · |M|` for the matching `M` it returns. The
    /// check oracle tests this against exact blossom per sweep seed.
    fn claimed_ratio(&self) -> f64;

    /// The claimed worst-case sparsifier size: the backend asserts
    /// `|E(H)| ≤` this for any `n`-vertex input. Certified per sweep.
    fn claimed_size_bound(&self, n: usize) -> usize;

    /// Build the sparsifier `H` alone (same vertex set as `g`). `seed`
    /// feeds randomized backends; deterministic ones ignore it.
    fn build(&self, g: &CsrGraph, seed: u64) -> CsrGraph;

    /// Build-and-match through a caller-owned arena: the zero-alloc warm
    /// path. Result semantics per backend — for `delta`, byte-identical
    /// to the un-traited pipeline entry points.
    fn solve<'s>(
        &self,
        g: &CsrGraph,
        seed: u64,
        threads: usize,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError>;

    /// [`solve`](MatchingSparsifier::solve) with unified work accounting
    /// on the shared meter keys.
    fn solve_metered<'s>(
        &self,
        g: &CsrGraph,
        seed: u64,
        threads: usize,
        meter: &mut WorkMeter,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError>;

    /// Build-and-match from a rescannable edge stream without
    /// materializing the parent graph, reporting resident-memory and
    /// scan accounting.
    fn solve_streamed(
        &self,
        src: &mut dyn EdgeStreamSource,
        seed: u64,
    ) -> Result<(PipelineResult, StreamBuildReport), ReadError>;
}

/// The `delta` backend: the paper's `G_Δ` pipeline behind the trait,
/// with zero behavior change. Every solve path delegates to the
/// pre-existing entry point with the caller's exact parameters, so the
/// fingerprint (matching pairs, sparsifier stats, probe counts) is
/// byte-identical to calling
/// [`approx_mcm_via_sparsifier`](crate::pipeline::approx_mcm_via_sparsifier)
/// directly — a conformance test pins this across `t ∈ {1, 2, 4}`.
///
/// The size claim is stated for the sparsifier the pipeline *actually*
/// builds: the pipeline re-aims Δ at the stage ε (see [`stage_params`]),
/// which is larger than the Δ of the caller's params — claiming the
/// caller-params bound would be claiming a bound on a different graph.
#[derive(Clone, Copy, Debug)]
pub struct DeltaBackend {
    /// The pipeline parameters (pre-stage-split, as callers supply them).
    pub params: SparsifierParams,
}

impl MatchingSparsifier for DeltaBackend {
    fn name(&self) -> &'static str {
        BackendKind::Delta.as_str()
    }

    fn params_summary(&self) -> String {
        format!(
            "beta={} eps={} delta={}",
            self.params.beta, self.params.eps, self.params.delta
        )
    }

    fn claimed_ratio(&self) -> f64 {
        // Theorem 3.1: a (1+ε)-approximate MCM through G_Δ.
        1.0 + self.params.eps
    }

    fn claimed_size_bound(&self, n: usize) -> usize {
        stage_params(&self.params).naive_size_bound(n)
    }

    fn build(&self, g: &CsrGraph, seed: u64) -> CsrGraph {
        build_sparsifier_parallel(g, &stage_params(&self.params), seed, 1)
            .expect("1 is a valid thread count")
            .graph
    }

    fn solve<'s>(
        &self,
        g: &CsrGraph,
        seed: u64,
        threads: usize,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError> {
        approx_mcm_via_sparsifier_with_scratch(g, &self.params, seed, threads, scratch)
    }

    fn solve_metered<'s>(
        &self,
        g: &CsrGraph,
        seed: u64,
        threads: usize,
        meter: &mut WorkMeter,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError> {
        approx_mcm_via_sparsifier_with_scratch_metered(
            g,
            &self.params,
            seed,
            threads,
            meter,
            scratch,
        )
    }

    fn solve_streamed(
        &self,
        src: &mut dyn EdgeStreamSource,
        seed: u64,
    ) -> Result<(PipelineResult, StreamBuildReport), ReadError> {
        approx_mcm_streamed(&mut &mut *src, &self.params, seed)
    }
}

/// The `edcs` backend: solve through an `(β, β⁻)`-EDCS (see
/// [`crate::edcs`]). Deterministic — the seed is ignored — with the
/// matching stage run at the full `eps` (no stage split; the EDCS's
/// ratio floor is structural, not an ε budget).
#[derive(Clone, Copy, Debug)]
pub struct EdcsBackend {
    /// Validated EDCS parameters (β, λ).
    pub params: EdcsParams,
    /// Bounded-augmentation budget for the match stage, in `(0, 1)`.
    pub eps: f64,
}

impl MatchingSparsifier for EdcsBackend {
    fn name(&self) -> &'static str {
        BackendKind::Edcs.as_str()
    }

    fn params_summary(&self) -> String {
        format!(
            "beta={} lambda={} eps={}",
            self.params.beta(),
            self.params.lambda(),
            self.eps
        )
    }

    fn claimed_ratio(&self) -> f64 {
        // EDCS contains a (3/2)(1+λ)-approximate matching
        // (arXiv:1811.02009); bounded augmentation at ε on top multiplies
        // in the remaining (1+ε).
        1.5 * (1.0 + self.params.lambda()) * (1.0 + self.eps)
    }

    fn claimed_size_bound(&self, n: usize) -> usize {
        self.params.size_bound(n)
    }

    fn build(&self, g: &CsrGraph, _seed: u64) -> CsrGraph {
        build_edcs(g, &self.params).0
    }

    fn solve<'s>(
        &self,
        g: &CsrGraph,
        _seed: u64,
        threads: usize,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError> {
        approx_mcm_via_edcs_with_scratch(g, &self.params, self.eps, threads, scratch)
    }

    fn solve_metered<'s>(
        &self,
        g: &CsrGraph,
        _seed: u64,
        threads: usize,
        meter: &mut WorkMeter,
        scratch: &'s mut PipelineScratch,
    ) -> Result<&'s PipelineResult, ThreadCountError> {
        approx_mcm_via_edcs_with_scratch_metered(g, &self.params, self.eps, threads, meter, scratch)
    }

    fn solve_streamed(
        &self,
        src: &mut dyn EdgeStreamSource,
        _seed: u64,
    ) -> Result<(PipelineResult, StreamBuildReport), ReadError> {
        approx_mcm_edcs_streamed(src, &self.params, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::approx_mcm_via_sparsifier;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, gnp};

    #[test]
    fn kind_names_roundtrip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(BackendKind::parse("EDCS"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    /// The tentpole's conformance pin: the `delta` backend behind the
    /// trait is byte-identical to the pre-refactor pipeline across
    /// thread counts.
    #[test]
    fn delta_backend_is_byte_identical_to_pipeline() {
        let mut rng = StdRng::seed_from_u64(42);
        let graphs = [clique(80), gnp(300, 0.05, &mut rng)];
        let params = SparsifierParams::practical(2, 0.4);
        let backend = DeltaBackend { params };
        let mut scratch = PipelineScratch::new();
        for (i, g) in graphs.iter().enumerate() {
            for seed in [0u64, 7] {
                for threads in [1usize, 2, 4] {
                    let direct = approx_mcm_via_sparsifier(g, &params, seed, threads).unwrap();
                    let traited = backend.solve(g, seed, threads, &mut scratch).unwrap();
                    assert_eq!(direct.matching, traited.matching, "graph {i} t={threads}");
                    assert_eq!(
                        direct.sparsifier, traited.sparsifier,
                        "graph {i} t={threads}"
                    );
                    assert_eq!(direct.probes, traited.probes, "graph {i} t={threads}");
                    assert_eq!(
                        direct.aug.augmentations, traited.aug.augmentations,
                        "graph {i} t={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_backend_build_matches_pipeline_sparsifier_size() {
        let g = clique(60);
        let params = SparsifierParams::practical(1, 0.5);
        let backend = DeltaBackend { params };
        let h = backend.build(&g, 3);
        let r = approx_mcm_via_sparsifier(&g, &params, 3, 1).unwrap();
        assert_eq!(h.num_edges(), r.sparsifier.edges);
        assert!(h.num_edges() <= backend.claimed_size_bound(g.num_vertices()));
    }

    #[test]
    fn both_backends_honor_claims_on_a_smoke_instance() {
        use sparsimatch_matching::blossom::maximum_matching;
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(200, 0.08, &mut rng);
        let exact = maximum_matching(&g).len() as f64;
        let backends: [&dyn MatchingSparsifier; 2] = [
            &DeltaBackend {
                params: SparsifierParams::practical(2, 0.4),
            },
            &EdcsBackend {
                params: EdcsParams::new(16, 0.125).unwrap(),
                eps: 0.4,
            },
        ];
        let mut scratch = PipelineScratch::new();
        for b in backends {
            let h = b.build(&g, 1);
            assert!(
                h.num_edges() <= b.claimed_size_bound(g.num_vertices()),
                "{}: size claim",
                b.name()
            );
            let r = b.solve(&g, 1, 1, &mut scratch).unwrap();
            assert!(r.matching.is_valid_for(&g), "{}", b.name());
            assert!(
                exact <= b.claimed_ratio() * r.matching.len() as f64 + 1e-9,
                "{}: ratio claim ({} vs {} at r={})",
                b.name(),
                exact,
                r.matching.len(),
                b.claimed_ratio()
            );
            assert!(!b.params_summary().is_empty());
        }
    }

    #[test]
    fn streamed_solve_through_trait_object() {
        let g = clique(50);
        let backends: [Box<dyn MatchingSparsifier>; 2] = [
            Box::new(DeltaBackend {
                params: SparsifierParams::practical(1, 0.5),
            }),
            Box::new(EdcsBackend {
                params: EdcsParams::new(8, 0.25).unwrap(),
                eps: 0.5,
            }),
        ];
        for b in backends {
            let mut src = g.clone();
            let mut scratch = PipelineScratch::new();
            let (streamed, report) = b.solve_streamed(&mut src, 9).unwrap();
            let in_mem = b.solve(&g, 9, 1, &mut scratch).unwrap();
            assert_eq!(streamed.matching, in_mem.matching, "{}", b.name());
            assert!(report.edges_scanned > 0, "{}", b.name());
        }
    }
}
