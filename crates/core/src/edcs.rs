//! The EDCS matching sparsifier: an *edge-degree constrained subgraph*
//! backend with trade-offs complementary to the paper's `G_Δ`.
//!
//! An `(β, β⁻)`-EDCS of `G` is a subgraph `H ⊆ G` satisfying two local
//! invariants (Assadi–Bernstein, arXiv:1811.02009):
//!
//! - **Property A** (degree bound): every edge `(u,v) ∈ H` has
//!   `deg_H(u) + deg_H(v) ≤ β`;
//! - **Property B** (saturation): every edge `(u,v) ∈ G ∖ H` has
//!   `deg_H(u) + deg_H(v) ≥ β⁻`.
//!
//! With `β⁻ = ⌈(1−λ)·β⌉` the subgraph has at most `n·(β−1)/2` edges
//! (Property A caps every H-degree at `β−1`) yet still contains a
//! `3/2 + O(λ)`-approximate maximum matching; arXiv:2406.07630 shows the
//! `3/2` factor is tight for bipartite graphs. Contrast with `G_Δ`:
//! the EDCS keeps *fewer* edges for comparable β and needs no
//! randomness, but its construction reads every edge of `G` (it is not
//! sublinear) and its ratio floor is `3/2`, not `1+ε`.
//!
//! Construction here is the sequential fixpoint: repeat passes over the
//! edges in storage order, removing an H-edge that violates Property A
//! and inserting a non-H edge that violates Property B, until a full
//! pass changes nothing. Termination is guaranteed by the potential
//! `Φ(H) = (β − 1/2)·Σ_u deg_H(u) − Σ_{(u,v) ∈ H} (deg_H(u)+deg_H(v))`:
//! every fix raises `Φ` by at least `1/2` and `Φ = O(n·β²)`, so the
//! build is infallible — there is no error path.

use crate::pipeline::PipelineResult;
use crate::scratch::PipelineScratch;
use crate::sparsifier::{SparsifierStats, ThreadCountError, MAX_THREADS};
use crate::stream_build::StreamBuildReport;
use sparsimatch_graph::adjacency::ProbeCounts;
use sparsimatch_graph::csr::{from_sorted_edges, CsrGraph};
use sparsimatch_graph::edge_stream::EdgeStreamSource;
use sparsimatch_graph::ids::EdgeId;
use sparsimatch_graph::io::ReadError;
use sparsimatch_matching::bounded_aug::{
    eliminate_augmenting_paths_up_to_with, max_path_len_for_eps,
};
use sparsimatch_matching::greedy::greedy_maximal_matching_into;
use sparsimatch_obs::{keys, WorkMeter};
use std::time::Instant;

/// Validated EDCS parameters. Construct via [`EdcsParams::new`], which
/// enforces the bounds the invariants need; the fields are read-only so
/// an `EdcsParams` value is valid by construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdcsParams {
    beta: usize,
    lambda: f64,
}

/// Why an `(β, λ)` pair was rejected by [`EdcsParams::new`]. The CLI
/// maps these to exit code 7 and the serve wire path to `bad_request`,
/// the same typed treatment the delta backend's bounds get.
#[derive(Clone, Debug, PartialEq)]
pub enum EdcsParamsError {
    /// `β < 2`: Property A would forbid every edge (an edge's two
    /// endpoints each contribute at least degree 1, so `β ≥ 2`).
    BetaTooSmall {
        /// The rejected value.
        beta: usize,
    },
    /// `λ` is not a finite number in `(0, 1)`.
    LambdaOutOfRange {
        /// The rejected value.
        lambda: f64,
    },
    /// `λ·β < 1`, which would put `β⁻ = ⌈(1−λ)β⌉` at `β` itself: then
    /// Properties A and B contradict on any edge with degree sum
    /// exactly `β`, and the fixpoint need not terminate.
    LambdaBetaTooSmall {
        /// The rejected β.
        beta: usize,
        /// The rejected λ.
        lambda: f64,
    },
}

impl std::fmt::Display for EdcsParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdcsParamsError::BetaTooSmall { beta } => {
                write!(f, "EDCS beta must be at least 2, got {beta}")
            }
            EdcsParamsError::LambdaOutOfRange { lambda } => {
                write!(f, "EDCS lambda must be in (0, 1), got {lambda}")
            }
            EdcsParamsError::LambdaBetaTooSmall { beta, lambda } => write!(
                f,
                "EDCS needs lambda * beta >= 1 so that beta- <= beta - 1, \
                 got lambda = {lambda}, beta = {beta}"
            ),
        }
    }
}

impl std::error::Error for EdcsParamsError {}

impl EdcsParams {
    /// Validate and construct. Requires `β ≥ 2`, `λ` finite in `(0, 1)`,
    /// and `λ·β ≥ 1` (equivalently `β⁻ ≤ β − 1`, the slack the fixpoint's
    /// termination argument and Property A/B compatibility both need).
    ///
    /// # Examples
    ///
    /// ```
    /// use sparsimatch_core::edcs::EdcsParams;
    ///
    /// let p = EdcsParams::new(16, 0.125).unwrap();
    /// assert_eq!(p.beta_minus(), 14);
    /// assert!(EdcsParams::new(1, 0.5).is_err());   // beta too small
    /// assert!(EdcsParams::new(16, 0.01).is_err()); // lambda * beta < 1
    /// ```
    pub fn new(beta: usize, lambda: f64) -> Result<EdcsParams, EdcsParamsError> {
        if beta < 2 {
            return Err(EdcsParamsError::BetaTooSmall { beta });
        }
        if !(lambda.is_finite() && 0.0 < lambda && lambda < 1.0) {
            return Err(EdcsParamsError::LambdaOutOfRange { lambda });
        }
        if lambda * (beta as f64) < 1.0 {
            return Err(EdcsParamsError::LambdaBetaTooSmall { beta, lambda });
        }
        Ok(EdcsParams { beta, lambda })
    }

    /// The default λ for a given β: `min(2/β, 1/2)` — `2/β` puts `β⁻` at
    /// `β − 2`, comfortable slack over the `λ·β ≥ 1` floor, and the cap
    /// keeps the value valid down to `β = 2` (where `λ = 1/2` is the
    /// floor itself). Used by the CLI and serve defaults.
    pub fn default_lambda(beta: usize) -> f64 {
        (2.0 / beta.max(1) as f64).min(0.5)
    }

    /// The degree-sum ceiling β (Property A).
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// The slack parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The degree-sum floor `β⁻ = ⌈(1−λ)·β⌉` (Property B). Always in
    /// `1..=β−1` for validated parameters.
    pub fn beta_minus(&self) -> usize {
        ((1.0 - self.lambda) * self.beta as f64).ceil() as usize
    }

    /// The worst-case size of any `(β, β⁻)`-EDCS on `n` vertices:
    /// `⌊n·(β−1)/2⌋`. Property A caps every H-degree at `β − 1`, so the
    /// degree sum — twice the edge count — is at most `n·(β−1)`.
    pub fn size_bound(&self, n: usize) -> usize {
        n * (self.beta - 1) / 2
    }
}

/// What the EDCS fixpoint did, reported alongside the subgraph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdcsStats {
    /// Full passes over the edge set, including the final no-op pass
    /// that certified the fixpoint.
    pub passes: usize,
    /// Insertions plus removals performed across all passes.
    pub ops: u64,
    /// Edges in the finished subgraph `H`.
    pub edges: usize,
}

/// One fixpoint run over `g`'s edges in storage order, writing
/// H-membership into `in_h` (EdgeId-indexed) and H-degrees into `deg`,
/// then collecting the kept edge ids (sorted, since the scan is in id
/// order) into `ids`. All three buffers are cleared and resized here —
/// clear-not-drop, so a warm arena allocates nothing.
pub(crate) fn mark_edcs_into(
    g: &CsrGraph,
    params: &EdcsParams,
    in_h: &mut Vec<bool>,
    deg: &mut Vec<u32>,
    ids: &mut Vec<EdgeId>,
) -> EdcsStats {
    let (beta, beta_minus) = (params.beta() as u32, params.beta_minus() as u32);
    in_h.clear();
    in_h.resize(g.num_edges(), false);
    deg.clear();
    deg.resize(g.num_vertices(), 0);
    let mut stats = EdcsStats::default();
    loop {
        stats.passes += 1;
        let mut changed = false;
        for (e, u, v) in g.edges() {
            let (ui, vi) = (u.0 as usize, v.0 as usize);
            if in_h[e.0 as usize] {
                if deg[ui] + deg[vi] > beta {
                    in_h[e.0 as usize] = false;
                    deg[ui] -= 1;
                    deg[vi] -= 1;
                    stats.ops += 1;
                    changed = true;
                }
            } else if deg[ui] + deg[vi] < beta_minus {
                // Post-insert the edge's degree sum is at most
                // β⁻ + 1 ≤ β, so an insertion never violates Property A.
                in_h[e.0 as usize] = true;
                deg[ui] += 1;
                deg[vi] += 1;
                stats.ops += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ids.clear();
    ids.extend(
        g.edges()
            .filter(|(e, ..)| in_h[e.0 as usize])
            .map(|(e, ..)| e),
    );
    stats.edges = ids.len();
    stats
}

/// Build a `(β, β⁻)`-EDCS of `g` with fresh buffers. The result is a
/// subgraph CSR over `g`'s vertex set satisfying Properties A and B
/// ([`edcs_violation`] certifies both), with at most
/// [`EdcsParams::size_bound`] edges. Deterministic: no randomness is
/// involved, so equal inputs give byte-equal subgraphs.
///
/// # Examples
///
/// ```
/// use sparsimatch_core::edcs::{build_edcs, edcs_violation, EdcsParams};
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(40);
/// let p = EdcsParams::new(8, 0.25).unwrap();
/// let (h, stats) = build_edcs(&g, &p);
/// assert_eq!(edcs_violation(&g, &h, &p), None);
/// assert!(stats.edges <= p.size_bound(40));
/// ```
pub fn build_edcs(g: &CsrGraph, params: &EdcsParams) -> (CsrGraph, EdcsStats) {
    let mut in_h = Vec::new();
    let mut deg = Vec::new();
    let mut ids = Vec::new();
    let stats = mark_edcs_into(g, params, &mut in_h, &mut deg, &mut ids);
    let h = g.edge_subgraph(ids.into_iter());
    (h, stats)
}

/// Check the EDCS invariants of `h` against its parent `g`: returns
/// `None` when `h ⊆ g`, every `h`-edge satisfies Property A, and every
/// `g ∖ h` edge satisfies Property B; otherwise a one-line description
/// of the first violation. This is the certificate the `backend` check
/// oracle runs per sweep seed.
pub fn edcs_violation(g: &CsrGraph, h: &CsrGraph, params: &EdcsParams) -> Option<String> {
    if h.num_vertices() != g.num_vertices() {
        return Some(format!(
            "vertex set mismatch: H has {} vertices, G has {}",
            h.num_vertices(),
            g.num_vertices()
        ));
    }
    let (beta, beta_minus) = (params.beta(), params.beta_minus());
    for (_, u, v) in h.edges() {
        if !g.has_edge(u, v) {
            return Some(format!("H edge ({}, {}) is not an edge of G", u.0, v.0));
        }
        let sum = h.degree(u) + h.degree(v);
        if sum > beta {
            return Some(format!(
                "Property A violated at H edge ({}, {}): degree sum {sum} > beta {beta}",
                u.0, v.0
            ));
        }
    }
    for (_, u, v) in g.edges() {
        if h.has_edge(u, v) {
            continue;
        }
        let sum = h.degree(u) + h.degree(v);
        if sum < beta_minus {
            return Some(format!(
                "Property B violated at non-H edge ({}, {}): degree sum {sum} < beta- {beta_minus}",
                u.0, v.0
            ));
        }
    }
    None
}

/// Approximate the MCM of `g` through an EDCS: build the `(β, β⁻)`
/// subgraph, then run greedy initialization plus bounded augmentation at
/// the *full* `eps` on it. Unlike the `G_Δ` pipeline there is no stage
/// split — the sparsifier's approximation factor is the fixed
/// `3/2 + O(λ)` of the EDCS theorems, so the whole ε budget goes to the
/// match stage and the end-to-end claim is `(3/2)·(1+λ)·(1+ε)`.
///
/// `seed` is accepted for signature parity with the seeded `delta`
/// pipeline and ignored: the EDCS build is deterministic. `threads` is
/// validated against the same `1..=`[`MAX_THREADS`] range as every
/// pipeline entry point; construction itself is sequential (the
/// fixpoint's pass order is the determinism contract).
pub fn approx_mcm_via_edcs(
    g: &CsrGraph,
    params: &EdcsParams,
    eps: f64,
    threads: usize,
) -> Result<PipelineResult, ThreadCountError> {
    let mut scratch = PipelineScratch::new();
    approx_mcm_via_edcs_impl(g, params, eps, threads, None, &mut scratch)?;
    Ok(scratch.into_result())
}

/// [`approx_mcm_via_edcs`] writing through a caller-owned
/// [`PipelineScratch`]: identical output, but the membership flags,
/// degree counters, CSR arrays, searcher, and result matching are all
/// reused — after a warm-up call on a given input size, repeat calls
/// perform zero heap allocations, same as the delta pipeline's warm
/// path.
pub fn approx_mcm_via_edcs_with_scratch<'s>(
    g: &CsrGraph,
    params: &EdcsParams,
    eps: f64,
    threads: usize,
    scratch: &'s mut PipelineScratch,
) -> Result<&'s PipelineResult, ThreadCountError> {
    approx_mcm_via_edcs_impl(g, params, eps, threads, None, scratch)?;
    Ok(scratch.result())
}

/// [`approx_mcm_via_edcs_with_scratch`] with unified work accounting:
/// stage spans land on the same keys as the delta pipeline
/// ([`keys::STAGE_MARK`] covers the fixpoint, [`keys::STAGE_EXTRACT`]
/// the CSR layout, [`keys::STAGE_MATCH`] the matching), and
/// [`keys::NEIGHBOR_PROBES`] records the half-edge visits the fixpoint
/// spent — `passes × 2m`, the honest linear-scan cost that separates
/// this backend from the sublinear delta path.
pub fn approx_mcm_via_edcs_with_scratch_metered<'s>(
    g: &CsrGraph,
    params: &EdcsParams,
    eps: f64,
    threads: usize,
    meter: &mut WorkMeter,
    scratch: &'s mut PipelineScratch,
) -> Result<&'s PipelineResult, ThreadCountError> {
    approx_mcm_via_edcs_impl(g, params, eps, threads, Some(meter), scratch)?;
    Ok(scratch.result())
}

fn approx_mcm_via_edcs_impl(
    g: &CsrGraph,
    params: &EdcsParams,
    eps: f64,
    threads: usize,
    meter: Option<&mut WorkMeter>,
    scratch: &mut PipelineScratch,
) -> Result<(), ThreadCountError> {
    if threads == 0 || threads > MAX_THREADS {
        return Err(ThreadCountError { requested: threads });
    }
    let total_start = Instant::now();
    let PipelineScratch {
        ids,
        csr,
        searcher,
        edcs_in,
        edcs_deg,
        result,
        ..
    } = scratch;

    let mark_start = Instant::now();
    let stats = mark_edcs_into(g, params, edcs_in, edcs_deg, ids);
    let mark_nanos = mark_start.elapsed().as_nanos();

    let extract_start = Instant::now();
    let sparse: &CsrGraph = csr.rebuild_from_marked(g, ids);
    let extract_nanos = extract_start.elapsed().as_nanos();

    // Map the fixpoint's counters onto the shared stats/probe slots:
    // `mark_cap` carries β, `marks_placed` the fix operations, and the
    // probe count is the linear half-edge scan cost `passes × 2m` — no
    // sublinearity claim is made for this backend.
    result.sparsifier = SparsifierStats {
        delta: 0,
        mark_cap: params.beta(),
        low_degree_vertices: 0,
        marks_placed: stats.ops as usize,
        edges: sparse.num_edges(),
    };
    result.probes = ProbeCounts {
        degree_probes: 0,
        neighbor_probes: stats.passes as u64 * 2 * g.num_edges() as u64,
    };

    let match_start = Instant::now();
    greedy_maximal_matching_into(sparse, &mut result.matching);
    result.aug = eliminate_augmenting_paths_up_to_with(
        sparse,
        &mut result.matching,
        max_path_len_for_eps(eps),
        searcher,
    );
    let match_nanos = match_start.elapsed().as_nanos();
    debug_assert!(result.matching.is_valid_for(g), "EDCS must be a subgraph");

    if let Some(meter) = meter {
        meter.add(keys::NEIGHBOR_PROBES, result.probes.neighbor_probes);
        meter.add(keys::SPARSIFIER_EDGES, result.sparsifier.edges as u64);
        meter.add(keys::EDGE_VISITS, result.aug.edge_visits);
        meter.add(keys::AUG_SEARCHES, result.aug.searches as u64);
        meter.add(keys::AUGMENTATIONS, result.aug.augmentations as u64);
        meter.add_span(keys::STAGE_MARK, 1, mark_nanos);
        meter.add_span(keys::STAGE_EXTRACT, 1, extract_nanos);
        meter.add_span(keys::STAGE_MATCH, 1, match_nanos);
        meter.add_span(keys::PIPELINE_TOTAL, 1, total_start.elapsed().as_nanos());
    }
    scratch.note_high_water();
    Ok(())
}

/// Build the EDCS from a rescannable lex-sorted edge stream without
/// materializing the parent graph. Each fixpoint pass is one full scan;
/// H-membership is carried between passes as a sorted edge list walked
/// by a cursor (the stream is lex-sorted, so membership of the edge
/// *currently* visited — the only query a pass makes — is a cursor
/// comparison). The result is identical to [`build_edcs`] on the
/// materialized graph, because both visit edges in the same order with
/// the same immediate degree updates; a test pins this equivalence.
///
/// The report reuses the delta path's [`StreamBuildReport`] layout:
/// `edges_scanned` is `passes × 2m` half-edge visits (strictly more
/// than the delta build's fixed `4m` — the price of determinism without
/// a degree oracle), and `peak_resident_bytes` counts the degree array
/// plus the double-buffered membership lists, still far below
/// materializing the parent.
pub fn build_edcs_streamed(
    src: &mut dyn EdgeStreamSource,
    params: &EdcsParams,
) -> Result<(CsrGraph, EdcsStats, StreamBuildReport), ReadError> {
    let n = src.num_vertices();
    let m = src.num_edges();
    let (beta, beta_minus) = (params.beta() as u32, params.beta_minus() as u32);
    let mut deg = vec![0u32; n];
    let mut old_h: Vec<(u32, u32)> = Vec::new();
    let mut new_h: Vec<(u32, u32)> = Vec::with_capacity(params.size_bound(n).min(m));
    let mut stats = EdcsStats::default();
    let mut edges_scanned = 0u64;
    let mut peak = 0usize;
    loop {
        stats.passes += 1;
        let mut changed = false;
        let mut cursor = 0usize;
        let mut ops = 0u64;
        new_h.clear();
        src.scan(&mut |u, v| {
            edges_scanned += 2;
            let (ui, vi) = (u as usize, v as usize);
            let in_h = cursor < old_h.len() && old_h[cursor] == (u, v);
            if in_h {
                cursor += 1;
                if deg[ui] + deg[vi] > beta {
                    deg[ui] -= 1;
                    deg[vi] -= 1;
                    ops += 1;
                    changed = true;
                } else {
                    new_h.push((u, v));
                }
            } else if deg[ui] + deg[vi] < beta_minus {
                deg[ui] += 1;
                deg[vi] += 1;
                new_h.push((u, v));
                ops += 1;
                changed = true;
            }
        })?;
        stats.ops += ops;
        peak = peak.max(deg.capacity() * 4 + (old_h.capacity() + new_h.capacity()) * 8);
        std::mem::swap(&mut old_h, &mut new_h);
        if !changed {
            break;
        }
    }
    stats.edges = old_h.len();
    drop(new_h);
    drop(deg);
    let h = from_sorted_edges(n, old_h);
    let sparsifier_bytes = h.memory_bytes();
    peak = peak.max(sparsifier_bytes + n * 4);
    let report = StreamBuildReport {
        peak_resident_bytes: peak,
        graph_bytes: CsrGraph::projected_memory_bytes(n, m),
        sparsifier_bytes,
        probes: ProbeCounts {
            degree_probes: 0,
            neighbor_probes: edges_scanned,
        },
        edges_scanned,
        io_retries: 0,
    };
    Ok((h, stats, report))
}

/// End-to-end out-of-core EDCS solve: stream-build the subgraph, then
/// greedy plus bounded augmentation at the full `eps` on it, mirroring
/// [`approx_mcm_via_edcs`]'s accounting (same stats/probe conventions).
pub fn approx_mcm_edcs_streamed(
    src: &mut dyn EdgeStreamSource,
    params: &EdcsParams,
    eps: f64,
) -> Result<(PipelineResult, StreamBuildReport), ReadError> {
    let (h, stats, report) = build_edcs_streamed(src, params)?;
    let (matching, aug) = crate::pipeline::approx_mcm_on_sparsifier(&h, eps);
    Ok((
        PipelineResult {
            matching,
            sparsifier: SparsifierStats {
                delta: 0,
                mark_cap: params.beta(),
                low_degree_vertices: 0,
                marks_placed: stats.ops as usize,
                edges: stats.edges,
            },
            probes: report.probes,
            aug,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        bipartite_gnp, clique, clique_union, gnp, CliqueUnionConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    fn test_graphs() -> Vec<CsrGraph> {
        let mut rng = StdRng::seed_from_u64(11);
        vec![
            clique(60),
            clique_union(
                CliqueUnionConfig {
                    n: 200,
                    diversity: 3,
                    clique_size: 40,
                },
                &mut rng,
            ),
            gnp(120, 0.1, &mut rng),
            bipartite_gnp(80, 80, 0.1, &mut rng),
            from_sorted_edges(0, Vec::new()),
        ]
    }

    #[test]
    fn params_validation() {
        assert!(EdcsParams::new(2, 0.5).is_ok());
        assert_eq!(
            EdcsParams::new(1, 0.5),
            Err(EdcsParamsError::BetaTooSmall { beta: 1 })
        );
        assert_eq!(
            EdcsParams::new(0, 0.5),
            Err(EdcsParamsError::BetaTooSmall { beta: 0 })
        );
        for bad in [0.0, 1.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(EdcsParams::new(8, bad).is_err(), "lambda = {bad}");
        }
        assert_eq!(
            EdcsParams::new(8, 0.1),
            Err(EdcsParamsError::LambdaBetaTooSmall {
                beta: 8,
                lambda: 0.1
            })
        );
        // beta- is always within 1..=beta-1 for accepted params.
        for beta in 2..40 {
            let p = EdcsParams::new(beta, EdcsParams::default_lambda(beta)).unwrap();
            assert!((1..=beta - 1).contains(&p.beta_minus()), "beta = {beta}");
        }
    }

    #[test]
    fn invariants_hold_on_every_family() {
        for (i, g) in test_graphs().iter().enumerate() {
            for (beta, lambda) in [(4, 0.5), (8, 0.25), (16, 0.125)] {
                let p = EdcsParams::new(beta, lambda).unwrap();
                let (h, stats) = build_edcs(g, &p);
                assert_eq!(edcs_violation(g, &h, &p), None, "graph {i}, beta {beta}");
                assert!(
                    stats.edges <= p.size_bound(g.num_vertices()),
                    "graph {i}: {} > bound {}",
                    stats.edges,
                    p.size_bound(g.num_vertices())
                );
                assert_eq!(stats.edges, h.num_edges());
            }
        }
    }

    #[test]
    fn matching_quality_within_claim() {
        // The backend's claimed ratio: (3/2)(1+lambda)(1+eps). Certified
        // here on dense and sparse instances against exact blossom.
        let p = EdcsParams::new(16, 0.125).unwrap();
        let eps = 0.3;
        let claim = 1.5 * (1.0 + p.lambda()) * (1.0 + eps);
        for (i, g) in test_graphs().iter().enumerate() {
            let exact = maximum_matching(g).len();
            let r = approx_mcm_via_edcs(g, &p, eps, 1).unwrap();
            assert!(r.matching.is_valid_for(g), "graph {i}");
            assert!(
                exact as f64 <= claim * r.matching.len() as f64 + 1e-9,
                "graph {i}: exact {exact} vs {} * {claim}",
                r.matching.len()
            );
        }
    }

    #[test]
    fn deterministic_and_seed_independent() {
        let g = clique(80);
        let p = EdcsParams::new(8, 0.25).unwrap();
        let a = approx_mcm_via_edcs(&g, &p, 0.4, 1).unwrap();
        let b = approx_mcm_via_edcs(&g, &p, 0.4, 1).unwrap();
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.sparsifier.edges, b.sparsifier.edges);
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh() {
        let p = EdcsParams::new(8, 0.25).unwrap();
        let mut scratch = PipelineScratch::new();
        for (i, g) in test_graphs().iter().enumerate() {
            let cold = approx_mcm_via_edcs(g, &p, 0.4, 1).unwrap();
            let warm = approx_mcm_via_edcs_with_scratch(g, &p, 0.4, 1, &mut scratch).unwrap();
            assert_eq!(cold.matching, warm.matching, "graph {i}");
            assert_eq!(cold.sparsifier, warm.sparsifier, "graph {i}");
            assert_eq!(cold.probes, warm.probes, "graph {i}");
        }
        assert!(scratch.high_water_bytes() > 0);
    }

    #[test]
    fn rejects_bad_thread_counts() {
        let g = clique(20);
        let p = EdcsParams::new(4, 0.5).unwrap();
        assert!(approx_mcm_via_edcs(&g, &p, 0.5, 0).is_err());
        assert!(approx_mcm_via_edcs(&g, &p, 0.5, 65).is_err());
        assert!(approx_mcm_via_edcs(&g, &p, 0.5, 64).is_ok());
    }

    #[test]
    fn streamed_build_matches_in_memory() {
        let mut rng = StdRng::seed_from_u64(3);
        let graphs = [
            clique(50),
            gnp(150, 0.08, &mut rng),
            bipartite_gnp(60, 60, 0.15, &mut rng),
        ];
        let p = EdcsParams::new(8, 0.25).unwrap();
        for (i, g) in graphs.iter().enumerate() {
            let (h_mem, stats_mem) = build_edcs(g, &p);
            // CsrGraph implements EdgeStreamSource scanning lex order,
            // the same order `edges()` iterates for graphs built from
            // sorted input — so the fixpoints coincide pass for pass.
            let mut src = g.clone();
            let (h_str, stats_str, report) = build_edcs_streamed(&mut src, &p).unwrap();
            assert_eq!(stats_mem, stats_str, "graph {i}");
            let mem_edges: Vec<_> = h_mem.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            let str_edges: Vec<_> = h_str.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            assert_eq!(mem_edges, str_edges, "graph {i}");
            assert_eq!(
                report.edges_scanned,
                stats_str.passes as u64 * 2 * g.num_edges() as u64
            );
            assert!(report.peak_resident_bytes > 0);
        }
    }

    #[test]
    fn streamed_solve_matches_in_memory_solve() {
        let g = clique(60);
        let p = EdcsParams::new(8, 0.25).unwrap();
        let mem = approx_mcm_via_edcs(&g, &p, 0.4, 1).unwrap();
        let mut src = g.clone();
        let (streamed, report) = approx_mcm_edcs_streamed(&mut src, &p, 0.4).unwrap();
        assert_eq!(mem.matching, streamed.matching);
        assert_eq!(mem.sparsifier.edges, streamed.sparsifier.edges);
        assert!(report.sparsifier_bytes > 0);
    }

    #[test]
    fn metered_matches_unmetered() {
        let g = clique(50);
        let p = EdcsParams::new(8, 0.25).unwrap();
        let mut scratch = PipelineScratch::new();
        let mut meter = WorkMeter::new();
        let plain = approx_mcm_via_edcs(&g, &p, 0.4, 1).unwrap();
        let metered =
            approx_mcm_via_edcs_with_scratch_metered(&g, &p, 0.4, 1, &mut meter, &mut scratch)
                .unwrap();
        assert_eq!(plain.matching, metered.matching);
        assert_eq!(
            meter.get(keys::SPARSIFIER_EDGES),
            metered.sparsifier.edges as u64
        );
        assert_eq!(
            meter.get(keys::NEIGHBOR_PROBES),
            metered.probes.neighbor_probes
        );
        assert_eq!(meter.span_stats(keys::PIPELINE_TOTAL).count, 1);
    }
}
