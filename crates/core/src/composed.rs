//! The Section 3.2 two-round composition `G̃_Δ`.
//!
//! Round 1: the random sparsifier `G_Δ` — a `(1+ε)`-matching sparsifier
//! with arboricity ≤ `2·mark_cap` (Observation 2.12), but *unbounded*
//! maximum degree. Round 2: Solomon's deterministic bounded-degree
//! sparsifier on top, sized for that arboricity — a further `(1+ε)` factor
//! and maximum degree `O(Δ/ε)`. The composition is a
//! `(1+ε)² ≤ (1+3ε)`-matching sparsifier of bounded degree, the input the
//! distributed bounded-degree matching algorithm needs.

use crate::params::SparsifierParams;
use crate::solomon::{degree_cap_for, solomon_sparsifier};
use crate::sparsifier::{build_sparsifier, Sparsifier};
use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;

/// Result of the two-round composition.
#[derive(Clone, Debug)]
pub struct ComposedSparsifier {
    /// Round-1 output `G_Δ`.
    pub round1: Sparsifier,
    /// Round-2 output `G̃_Δ` (bounded degree).
    pub graph: CsrGraph,
    /// The degree cap Solomon's round was sized with.
    pub degree_cap: usize,
}

impl ComposedSparsifier {
    /// The guaranteed maximum degree of [`ComposedSparsifier::graph`].
    pub fn degree_bound(&self) -> usize {
        self.degree_cap
    }
}

/// Build `G̃_Δ`: random sparsifier, then Solomon's bounded-degree
/// sparsifier sized for arboricity `2·mark_cap`.
pub fn build_composed_sparsifier(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> ComposedSparsifier {
    let round1 = build_sparsifier(g, params, rng);
    let alpha_bound = params.arboricity_bound();
    let degree_cap = degree_cap_for(alpha_bound, params.eps);
    let graph = solomon_sparsifier(&round1.graph, degree_cap);
    ComposedSparsifier {
        round1,
        graph,
        degree_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{
        clique_union, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn degree_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = clique_union(
            CliqueUnionConfig {
                n: 200,
                diversity: 2,
                clique_size: 50,
            },
            &mut rng,
        );
        let p = SparsifierParams::practical(2, 0.4);
        let c = build_composed_sparsifier(&g, &p, &mut rng);
        assert!(c.graph.max_degree() <= c.degree_bound());
    }

    #[test]
    fn composition_preserves_matching_within_3eps() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(400, 1.0, 25.0),
            &mut rng,
        );
        let eps = 0.4;
        let p = SparsifierParams::practical(5, eps);
        let exact = maximum_matching(&g).len();
        let c = build_composed_sparsifier(&g, &p, &mut rng);
        let composed_mcm = maximum_matching(&c.graph).len();
        assert!(
            composed_mcm as f64 * (1.0 + 3.0 * eps) >= exact as f64,
            "composed {composed_mcm} vs exact {exact}"
        );
    }

    #[test]
    fn round1_is_input_of_round2() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 20,
            },
            &mut rng,
        );
        let p = SparsifierParams::practical(2, 0.5);
        let c = build_composed_sparsifier(&g, &p, &mut rng);
        for (_, u, v) in c.graph.edges() {
            assert!(c.round1.graph.has_edge(u, v));
        }
    }
}
