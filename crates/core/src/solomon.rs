//! Solomon's ITCS'18 bounded-degree matching sparsifier for
//! bounded-arboricity graphs (used in the Section 3.2 composition).
//!
//! For a graph of arboricity α, each vertex marks `Δ_α = Θ(α/ε)`
//! *arbitrary* incident edges (no randomness needed!), and the sparsifier
//! keeps exactly the edges marked by **both** endpoints. Consequences:
//!
//! * the maximum degree is at most `Δ_α` by construction;
//! * the matching approximation is `1 + ε`: an MCM edge `{u, v}` can be
//!   lost only if an endpoint spent all `Δ_α` marks, and in a bounded-
//!   arboricity graph few vertices can be that busy, so lost matching
//!   edges are recoverable through marked neighbors (see [Solomon,
//!   ITCS'18] for the charging argument).
//!
//! The paper stresses (Section 3.2) why this *mutual-marking* trick is
//! deterministic-safe on bounded-arboricity graphs yet fails on bounded-β
//! graphs — experiment E12 demonstrates the failure on cliques.

use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// The mark budget `Δ_α = ⌈4α/ε⌉` (constant chosen so the composed
/// experiments meet their `(1+ε)` targets; Solomon's analysis gives
/// `Θ(α/ε)` without optimizing constants).
pub fn degree_cap_for(alpha: usize, eps: f64) -> usize {
    assert!(eps > 0.0);
    ((4.0 * alpha as f64 / eps).ceil() as usize).max(1)
}

/// Build the bounded-degree sparsifier: each vertex marks its first
/// `degree_cap` incident edges (adjacency-array order — any fixed rule
/// works), keeping edges marked from both sides. The result has maximum
/// degree ≤ `degree_cap`.
pub fn solomon_sparsifier(g: &CsrGraph, degree_cap: usize) -> CsrGraph {
    let n = g.num_vertices();
    let mut kept = Vec::new();
    for v in 0..n {
        let v = VertexId::new(v);
        let deg = g.degree(v);
        let marks = deg.min(degree_cap);
        for i in 0..marks {
            let (u, e) = (g.neighbor(v, i), g.incident_edge(v, i));
            if u.0 < v.0 {
                continue; // handle each edge once, from its larger endpoint
            }
            // Is this edge also within u's first `degree_cap` slots?
            // Adjacency arrays are sorted by neighbor id, so locate v in
            // u's array via the shared edge id.
            let du = g.degree(u);
            let u_marks = du.min(degree_cap);
            let mut mutual = false;
            for j in 0..u_marks {
                if g.incident_edge(u, j) == e {
                    mutual = true;
                    break;
                }
            }
            if mutual {
                kept.push(e);
            }
        }
    }
    g.edge_subgraph(kept.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, gnp, path, star};
    use sparsimatch_matching::blossom::maximum_matching;

    #[test]
    fn degree_cap_formula() {
        assert_eq!(degree_cap_for(2, 0.5), 16);
        assert_eq!(degree_cap_for(1, 1.0), 4);
        assert!(degree_cap_for(10, 0.1) >= 400);
    }

    #[test]
    fn max_degree_is_capped() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(100, 0.3, &mut rng);
        for cap in [2usize, 5, 10] {
            let s = solomon_sparsifier(&g, cap);
            assert!(s.max_degree() <= cap, "cap {cap}: {}", s.max_degree());
        }
    }

    #[test]
    fn sparse_graph_fully_kept_with_generous_cap() {
        let g = path(20);
        let s = solomon_sparsifier(&g, 5);
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn preserves_matching_on_low_arboricity() {
        // Trees/paths have arboricity 1; cap 4/eps keeps (1+eps) matching.
        let g = star(30);
        let s = solomon_sparsifier(&g, degree_cap_for(1, 0.5));
        assert_eq!(maximum_matching(&s).len(), 1);
        let p = path(41);
        let sp = solomon_sparsifier(&p, degree_cap_for(1, 0.5));
        assert_eq!(maximum_matching(&sp).len(), maximum_matching(&p).len());
    }

    #[test]
    fn mutual_marking_fails_on_cliques() {
        // The E12 ablation in miniature: on K_n (arboricity ~ n/2 but
        // beta = 1), pretending arboricity is small destroys the matching —
        // kept edges concentrate among the first `cap` low-id slots.
        let g = clique(60);
        let cap = 6;
        let s = solomon_sparsifier(&g, cap);
        let kept_mcm = maximum_matching(&s).len();
        assert!(
            kept_mcm <= cap,
            "mutual marking should collapse the clique matching, got {kept_mcm}"
        );
        assert_eq!(maximum_matching(&g).len(), 30);
    }

    #[test]
    fn result_is_subgraph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(50, 0.2, &mut rng);
        let s = solomon_sparsifier(&g, 4);
        for (_, u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
    }
}
