//! Sparsifier parameters: from `(β, ε)` to the per-vertex mark count Δ.
//!
//! The proof of Theorem 2.1 (Claim 2.7) fixes `Δ = 20·(β/ε)·ln(24/ε)`.
//! That constant is what makes the union bound close with probability
//! `1 − 1/poly(n)`; in practice far smaller values already sparsify well
//! (experiment E11 quantifies this), so [`SparsifierParams`] carries an
//! explicit scale factor with the paper's value as `scale = 1`.

/// Parameters of the random sparsifier `G_Δ`.
///
/// ```
/// use sparsimatch_core::params::SparsifierParams;
///
/// // Line graphs have β ≤ 2; target a (1+0.25)-approximation.
/// let p = SparsifierParams::practical(2, 0.25);
/// assert!(p.delta >= 1);
/// assert_eq!(p.mark_cap(), 2 * p.delta);
/// // The proof constant is 20x larger:
/// assert!(SparsifierParams::paper(2, 0.25).delta >= 19 * p.delta);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsifierParams {
    /// The (bound on the) neighborhood independence number of the input.
    pub beta: usize,
    /// Target approximation slack: the sparsifier preserves the MCM within
    /// `1 + eps` w.h.p.
    pub eps: f64,
    /// Per-vertex number of randomly marked incident edges.
    pub delta: usize,
}

impl SparsifierParams {
    /// The paper's proof constant: `Δ = ⌈20·(β/ε)·ln(24/ε)⌉`.
    pub fn paper(beta: usize, eps: f64) -> Self {
        Self::scaled(beta, eps, 1.0)
    }

    /// A practically sized Δ (scale 1/20 of the proof constant, i.e.
    /// `Δ = ⌈(β/ε)·ln(24/ε)⌉`): experiment E11 shows this already achieves
    /// the `(1+ε)` guarantee on every benchmark family, because the proof's
    /// union bound is loose.
    pub fn practical(beta: usize, eps: f64) -> Self {
        Self::scaled(beta, eps, 1.0 / 20.0)
    }

    /// `Δ = ⌈scale · 20 · (β/ε) · ln(24/ε)⌉`, clamped to ≥ 1.
    pub fn scaled(beta: usize, eps: f64, scale: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "theorem requires 0 < eps < 1");
        assert!(beta >= 1, "beta is at least 1 for any graph with an edge");
        assert!(scale > 0.0);
        let delta = (scale * 20.0 * (beta as f64 / eps) * (24.0 / eps).ln()).ceil() as usize;
        SparsifierParams {
            beta,
            eps,
            delta: delta.max(1),
        }
    }

    /// Explicit Δ (for ablations).
    pub fn with_delta(beta: usize, eps: f64, delta: usize) -> Self {
        assert!(delta >= 1);
        SparsifierParams { beta, eps, delta }
    }

    /// The low-degree threshold of the Section 3.1 construction: vertices
    /// of degree at most `2Δ` mark *all* their incident edges (this is the
    /// tweak that makes deterministic-time sampling work; it at most
    /// doubles the size and arboricity bounds).
    pub fn mark_cap(&self) -> usize {
        2 * self.delta
    }

    /// Theorem 2.1's validity window: `β ≤ c·ε·n/ln n`. Returns whether
    /// the window holds for an `n`-vertex input with the paper's (implicit)
    /// constant taken as 1. Outside the window the whp bound degrades —
    /// the construction still works, there is just no guarantee.
    pub fn valid_for(&self, n: usize) -> bool {
        if n < 3 {
            return true;
        }
        (self.beta as f64) <= self.eps * n as f64 / (n as f64).ln()
    }

    /// Observation 2.10 size bound for this construction:
    /// `|E(G_Δ)| ≤ 2·|MCM|·(mark_cap + β)`.
    pub fn size_bound(&self, mcm: usize) -> usize {
        2 * mcm * (self.mark_cap() + self.beta)
    }

    /// The naive size bound `n · mark_cap`.
    pub fn naive_size_bound(&self, n: usize) -> usize {
        n * self.mark_cap()
    }

    /// Observation 2.12 arboricity bound for this construction: every edge
    /// of `G_Δ[U]` is marked by an endpoint in `U` and each vertex marks at
    /// most `mark_cap` edges, so `α(G_Δ) ≤ 2·mark_cap`.
    pub fn arboricity_bound(&self) -> usize {
        2 * self.mark_cap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant() {
        let p = SparsifierParams::paper(1, 0.5);
        // 20 * (1/0.5) * ln(48) ≈ 40 * 3.871 ≈ 154.9 -> 155.
        assert_eq!(p.delta, 155);
        assert_eq!(p.mark_cap(), 310);
    }

    #[test]
    fn practical_is_twentieth() {
        let paper = SparsifierParams::paper(3, 0.2);
        let prac = SparsifierParams::practical(3, 0.2);
        // Up to rounding: prac ≈ paper / 20.
        assert!(prac.delta >= paper.delta / 20);
        assert!(prac.delta <= paper.delta / 20 + 1);
    }

    #[test]
    fn delta_monotone_in_beta_and_eps() {
        let base = SparsifierParams::paper(2, 0.3).delta;
        assert!(SparsifierParams::paper(4, 0.3).delta > base);
        assert!(SparsifierParams::paper(2, 0.1).delta > base);
    }

    #[test]
    fn validity_window() {
        let p = SparsifierParams::with_delta(2, 0.5, 10);
        assert!(p.valid_for(1000)); // 2 <= 0.5*1000/ln(1000) ≈ 72
        let tight = SparsifierParams::with_delta(500, 0.5, 10);
        assert!(!tight.valid_for(1000)); // 500 > 72
    }

    #[test]
    fn bounds_formulae() {
        let p = SparsifierParams::with_delta(3, 0.5, 7);
        assert_eq!(p.mark_cap(), 14);
        assert_eq!(p.size_bound(10), 2 * 10 * (14 + 3));
        assert_eq!(p.naive_size_bound(100), 1400);
        assert_eq!(p.arboricity_bound(), 28);
    }

    #[test]
    #[should_panic]
    fn rejects_eps_one() {
        SparsifierParams::paper(1, 1.0);
    }

    #[test]
    fn delta_never_zero() {
        let p = SparsifierParams::scaled(1, 0.9, 1e-6);
        assert!(p.delta >= 1);
    }
}
