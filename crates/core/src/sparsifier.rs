//! The random matching sparsifier `G_Δ` (Section 2 of the paper).
//!
//! Every vertex marks Δ uniform incident edges without replacement —
//! all of them if its degree is at most the low-degree threshold `2Δ`
//! (the Section 3.1 tweak that enables deterministic-time sampling). The
//! sparsifier is the subgraph of all marked edges, over the *same* vertex
//! set, so a matching in `G_Δ` is a matching in `G` verbatim.

use crate::params::SparsifierParams;
use crate::sampler::{mark_indices_for_vertex, PosArraySampler};
use rand::Rng;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::{EdgeId, VertexId};
use sparsimatch_obs::{keys, WorkMeter};

/// Maximum accepted thread count for [`build_sparsifier_parallel`].
///
/// The cap is a sanity bound, not a memory-safety requirement: each worker
/// allocates only a sampler overlay sized to the largest degree in its own
/// vertex range plus a mark buffer proportional to the marks it places, so
/// oversubscribing the host merely wastes scheduling — it cannot blow up
/// memory. Requests outside `1..=MAX_THREADS` are still rejected with
/// [`ThreadCountError`] rather than silently clamped, because a wildly
/// out-of-range request is almost certainly a caller bug.
pub const MAX_THREADS: usize = 64;

/// An out-of-range thread count passed to [`build_sparsifier_parallel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadCountError {
    /// The rejected request.
    pub requested: usize,
}

impl std::fmt::Display for ThreadCountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread count must be between 1 and {MAX_THREADS}, got {}",
            self.requested
        )
    }
}

impl std::error::Error for ThreadCountError {}

/// Construction statistics, all deterministic consequences of the marking
/// scheme (only *which* edges get marked is random).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparsifierStats {
    /// Δ used.
    pub delta: usize,
    /// Low-degree threshold (`2Δ`).
    pub mark_cap: usize,
    /// Vertices that marked their full neighborhood.
    pub low_degree_vertices: usize,
    /// Total marks placed (with multiplicity: an edge marked by both
    /// endpoints counts twice).
    pub marks_placed: usize,
    /// Distinct marked edges = `|E(G_Δ)|`.
    pub edges: usize,
}

/// The sparsifier `G_Δ` of a CSR graph.
#[derive(Clone, Debug)]
pub struct Sparsifier {
    /// The sparsified graph (same vertex ids as the input).
    pub graph: CsrGraph,
    /// Construction statistics.
    pub stats: SparsifierStats,
}

/// Build `G_Δ` from a CSR graph. Runs in time `O(n + |E(G_Δ)|)` —
/// deterministically linear in the *output*, not the input (Theorem 3.1's
/// construction bound), modulo the final CSR layout.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sparsimatch_core::params::SparsifierParams;
/// use sparsimatch_core::sparsifier::build_sparsifier;
/// use sparsimatch_graph::generators::clique;
///
/// let g = clique(200); // β = 1, ~20k edges
/// let params = SparsifierParams::practical(1, 0.3);
/// let mut rng = StdRng::seed_from_u64(7);
/// let s = build_sparsifier(&g, &params, &mut rng);
/// assert!(s.stats.edges <= params.naive_size_bound(200));
/// assert!(s.stats.edges < g.num_edges() / 2, "much sparser than the input");
/// ```
pub fn build_sparsifier(g: &CsrGraph, params: &SparsifierParams, rng: &mut impl Rng) -> Sparsifier {
    build_sparsifier_impl(g, params, rng, None)
}

/// [`build_sparsifier`] with unified work accounting: sampler RNG draws
/// and overlay writes, adjacency probes, and the sparsifier size are
/// mirrored into `meter` (see [`sparsimatch_obs::keys`]). The output is
/// identical to the unmetered build for the same RNG state.
pub fn build_sparsifier_metered(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    meter: &mut WorkMeter,
) -> Sparsifier {
    build_sparsifier_impl(g, params, rng, Some(meter))
}

fn build_sparsifier_impl(
    g: &CsrGraph,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    meter: Option<&mut WorkMeter>,
) -> Sparsifier {
    let n = g.num_vertices();
    let mut keep: Vec<EdgeId> = Vec::new();
    let mut sampler = PosArraySampler::new(g.max_degree());
    let mut indices: Vec<u32> = Vec::with_capacity(params.mark_cap());
    let mut stats = SparsifierStats {
        delta: params.delta,
        mark_cap: params.mark_cap(),
        ..Default::default()
    };
    for v in 0..n {
        let v = VertexId::new(v);
        let deg = g.degree(v);
        if deg <= params.mark_cap() {
            stats.low_degree_vertices += 1;
        }
        mark_indices_for_vertex(
            g,
            v,
            params.delta,
            params.mark_cap(),
            &mut sampler,
            rng,
            &mut indices,
        );
        stats.marks_placed += indices.len();
        for &i in &indices {
            keep.push(g.incident_edge(v, i as usize));
        }
    }
    // The mark buffer holds O(marks_placed) ids, never O(|E(G)|) — keeping
    // construction linear in the *output* as Theorem 3.1 promises.
    keep.sort_unstable();
    keep.dedup();
    let graph = sparsimatch_graph::csr::from_marked_edges(g, &keep, 1);
    stats.edges = graph.num_edges();
    if let Some(meter) = meter {
        // The CSR fast path reads the graph directly, so probes are
        // accounted analytically: two degree reads per vertex (the
        // low-degree check and the one inside `mark_indices_for_vertex`)
        // and one adjacency-entry read per mark placed.
        meter.add(keys::DEGREE_PROBES, 2 * n as u64);
        meter.add(keys::NEIGHBOR_PROBES, stats.marks_placed as u64);
        meter.add(keys::SPARSIFIER_EDGES, stats.edges as u64);
        sampler.mirror_into(meter);
    }
    Sparsifier { graph, stats }
}

/// Parallel `G_Δ` construction: per-vertex marking is embarrassingly
/// parallel once each vertex draws from its own deterministically seeded
/// RNG (exactly the independence the analysis requires anyway, and the
/// same seeding the distributed protocol uses). The output is identical
/// for any thread count.
///
/// Rejects `threads` outside `1..=`[`MAX_THREADS`] with a
/// [`ThreadCountError`] (no silent clamping).
pub fn build_sparsifier_parallel(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
) -> Result<Sparsifier, ThreadCountError> {
    build_sparsifier_parallel_impl(g, params, seed, threads, None)
}

/// [`build_sparsifier_parallel`] with unified work accounting. Per-worker
/// counters are summed before mirroring, so the metered totals are also
/// thread-count invariant.
pub fn build_sparsifier_parallel_metered(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: &mut WorkMeter,
) -> Result<Sparsifier, ThreadCountError> {
    build_sparsifier_parallel_impl(g, params, seed, threads, Some(meter))
}

struct ShardResult {
    /// Edge ids marked by this worker's vertex range, sorted and deduped
    /// locally (an edge can still appear in two different shards when its
    /// endpoints land in different ranges).
    keep: Vec<u32>,
    marks_placed: usize,
    low_degree: usize,
    rng_draws: u64,
    overlay_writes: u64,
}

/// The sorted, deduplicated marked-edge list plus marking statistics —
/// stage 1 of the pipeline, before any CSR is materialized. Exposed to the
/// pipeline so stage timings can bracket marking and extraction separately.
pub(crate) struct ParallelMarks {
    /// Globally sorted, strictly increasing marked edge ids.
    pub ids: Vec<EdgeId>,
    /// Marking statistics; `edges` is already set to `ids.len()`.
    pub stats: SparsifierStats,
    /// Total RNG draws across workers (thread-count invariant).
    pub rng_draws: u64,
    /// Total sampler-overlay writes across workers (thread-count invariant).
    pub overlay_writes: u64,
}

/// Run the marking stage across `threads` workers over disjoint vertex
/// ranges, then merge the per-worker mark buffers into one sorted,
/// deduplicated edge-id list. Deterministic for a fixed `seed` regardless
/// of `threads`.
pub(crate) fn mark_edges_parallel(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
) -> Result<ParallelMarks, ThreadCountError> {
    use rand::SeedableRng;
    if threads == 0 || threads > MAX_THREADS {
        return Err(ThreadCountError { requested: threads });
    }
    let n = g.num_vertices();
    let chunk = n.div_ceil(threads).max(1);
    let shards: Vec<ShardResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(n);
                s.spawn(move || {
                    // Size the sampler overlay to this worker's own range,
                    // not the global max degree: a star hub inflates one
                    // worker's overlay, not all of them. The same pass
                    // bounds the mark count (≤ min(deg, mark_cap) per
                    // vertex) so `keep` is reserved once, up front.
                    let mut local_max_deg = 0usize;
                    let mut mark_bound = 0usize;
                    for v in lo..hi {
                        let deg = g.degree(VertexId::new(v));
                        local_max_deg = local_max_deg.max(deg);
                        mark_bound += deg.min(params.mark_cap());
                    }
                    let mut sampler = PosArraySampler::new(local_max_deg.max(1));
                    let mut indices = Vec::with_capacity(params.mark_cap().max(1));
                    let mut keep: Vec<u32> = Vec::with_capacity(mark_bound);
                    let mut marks_placed = 0usize;
                    let mut low_degree = 0usize;
                    for v in lo..hi {
                        let vid = VertexId::new(v);
                        let deg = g.degree(vid);
                        if deg <= params.mark_cap() {
                            low_degree += 1;
                        }
                        let mut rng = rand::rngs::StdRng::seed_from_u64(
                            seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        mark_indices_for_vertex(
                            g,
                            vid,
                            params.delta,
                            params.mark_cap(),
                            &mut sampler,
                            &mut rng,
                            &mut indices,
                        );
                        marks_placed += indices.len();
                        for &i in &indices {
                            keep.push(g.incident_edge(vid, i as usize).0);
                        }
                    }
                    keep.sort_unstable();
                    keep.dedup();
                    ShardResult {
                        keep,
                        marks_placed,
                        low_degree,
                        rng_draws: sampler.rng_draws(),
                        overlay_writes: sampler.overlay_writes(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // Safety: join() only errs if the worker panicked; propagating
            // that as a panic here is the intended failure mode.
            .map(|h| h.join().expect("sparsifier worker panicked"))
            .collect()
    });
    let mut stats = SparsifierStats {
        delta: params.delta,
        mark_cap: params.mark_cap(),
        ..Default::default()
    };
    let mut rng_draws = 0u64;
    let mut overlay_writes = 0u64;
    for shard in &shards {
        stats.marks_placed += shard.marks_placed;
        stats.low_degree_vertices += shard.low_degree;
        rng_draws += shard.rng_draws;
        overlay_writes += shard.overlay_writes;
    }
    let shard_bufs: Vec<Vec<u32>> = shards.into_iter().map(|s| s.keep).collect();
    let ids = merge_mark_shards(&shard_bufs, g.num_edges(), threads);
    stats.edges = ids.len();
    Ok(ParallelMarks {
        ids,
        stats,
        rng_draws,
        overlay_writes,
    })
}

/// Merge per-worker sorted mark buffers into one globally sorted,
/// deduplicated edge-id list with a two-pass count/prefix-sum: pass one
/// merges each edge-id *bucket* independently in parallel (every worker's
/// contribution to a bucket is a contiguous subrange found by binary
/// search), the count/prefix-sum over bucket lengths fixes each bucket's
/// output offset, and pass two scatters the buckets into place in parallel.
fn merge_mark_shards(shards: &[Vec<u32>], num_edges: usize, threads: usize) -> Vec<EdgeId> {
    if num_edges == 0 || shards.is_empty() {
        return Vec::new();
    }
    if shards.len() == 1 {
        // Already sorted and deduplicated by the lone worker.
        return shards[0].iter().map(|&e| EdgeId(e)).collect();
    }
    let bucket_width = num_edges.div_ceil(threads).max(1);
    let buckets: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|b| {
                let lo = (b * bucket_width).min(num_edges) as u32;
                let hi = ((b + 1) * bucket_width).min(num_edges) as u32;
                s.spawn(move || {
                    // Locate each shard's contribution first so `merged`
                    // is reserved once instead of grown per shard.
                    let mut spans = [(0usize, 0usize); MAX_THREADS];
                    let mut total = 0usize;
                    for (shard, span) in shards.iter().zip(spans.iter_mut()) {
                        let start = shard.partition_point(|&e| e < lo);
                        let end = shard.partition_point(|&e| e < hi);
                        *span = (start, end);
                        total += end - start;
                    }
                    let mut merged: Vec<u32> = Vec::with_capacity(total);
                    for (shard, &(start, end)) in shards.iter().zip(spans.iter()) {
                        merged.extend_from_slice(&shard[start..end]);
                    }
                    merged.sort_unstable();
                    merged.dedup();
                    merged
                })
            })
            .collect();
        handles
            .into_iter()
            // Safety: as above — a join error means the worker panicked.
            .map(|h| h.join().expect("mark-merge worker panicked"))
            .collect()
    });
    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut out: Vec<EdgeId> = Vec::with_capacity(total);
    {
        // Scatter pass: each bucket owns a disjoint window of the output,
        // handed out by `split_at_mut` in prefix-sum order.
        let mut rest = out.spare_capacity_mut();
        std::thread::scope(|s| {
            for bucket in &buckets {
                let (window, tail) = rest.split_at_mut(bucket.len());
                rest = tail;
                s.spawn(move || {
                    for (slot, &e) in window.iter_mut().zip(bucket) {
                        slot.write(EdgeId(e));
                    }
                });
            }
        });
    }
    // SAFETY: `total` slots were reserved and every one of them was
    // initialized by exactly one scatter worker above.
    unsafe { out.set_len(total) };
    out
}

/// Work summary of a scratch-path marking run (the stats plus the work
/// counters [`ParallelMarks`] reports alongside its ids).
pub(crate) struct MarkSummary {
    /// Marking-stage statistics (`edges` set to the deduplicated count).
    pub stats: SparsifierStats,
    /// RNG draws taken during this run (delta, not the sampler lifetime
    /// total, so it matches the fresh-sampler parallel path).
    pub rng_draws: u64,
    /// Overlay writes during this run (delta, as above).
    pub overlay_writes: u64,
}

/// The marking stage of [`mark_edges_parallel`] run sequentially into
/// caller-owned buffers: byte-identical output and stats to
/// `mark_edges_parallel(g, params, seed, 1)` (pinned by test), but the
/// sampler overlay, index buffer, mark buffer, and output id list are all
/// reused — allocation-free once they have capacity. This is the pipeline
/// scratch path's stage 1.
pub(crate) fn mark_edges_sequential_into(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    sampler: &mut PosArraySampler,
    indices: &mut Vec<u32>,
    keep: &mut Vec<u32>,
    ids: &mut Vec<EdgeId>,
) -> MarkSummary {
    use rand::SeedableRng;
    let n = g.num_vertices();
    sampler.ensure_capacity(g.max_degree().max(1));
    let draws_before = sampler.rng_draws();
    let writes_before = sampler.overlay_writes();
    let mut stats = SparsifierStats {
        delta: params.delta,
        mark_cap: params.mark_cap(),
        ..Default::default()
    };
    keep.clear();
    for v in 0..n {
        let vid = VertexId::new(v);
        let deg = g.degree(vid);
        if deg <= params.mark_cap() {
            stats.low_degree_vertices += 1;
        }
        // Same per-vertex seeding as the parallel workers — the marks must
        // not depend on which path ran.
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15));
        mark_indices_for_vertex(
            g,
            vid,
            params.delta,
            params.mark_cap(),
            sampler,
            &mut rng,
            indices,
        );
        stats.marks_placed += indices.len();
        for &i in indices.iter() {
            keep.push(g.incident_edge(vid, i as usize).0);
        }
    }
    keep.sort_unstable();
    keep.dedup();
    ids.clear();
    ids.extend(keep.iter().map(|&e| EdgeId(e)));
    stats.edges = ids.len();
    MarkSummary {
        stats,
        rng_draws: sampler.rng_draws() - draws_before,
        overlay_writes: sampler.overlay_writes() - writes_before,
    }
}

fn build_sparsifier_parallel_impl(
    g: &CsrGraph,
    params: &SparsifierParams,
    seed: u64,
    threads: usize,
    meter: Option<&mut WorkMeter>,
) -> Result<Sparsifier, ThreadCountError> {
    let marks = mark_edges_parallel(g, params, seed, threads)?;
    let graph = sparsimatch_graph::csr::from_marked_edges(g, &marks.ids, threads);
    let mut stats = marks.stats;
    stats.edges = graph.num_edges();
    if let Some(meter) = meter {
        // Same analytic probe accounting as the sequential CSR path:
        // two degree reads per vertex, one adjacency-entry read per mark.
        meter.add(keys::DEGREE_PROBES, 2 * g.num_vertices() as u64);
        meter.add(keys::NEIGHBOR_PROBES, stats.marks_placed as u64);
        meter.add(keys::SPARSIFIER_EDGES, stats.edges as u64);
        meter.add(keys::RNG_DRAWS, marks.rng_draws);
        meter.add(keys::OVERLAY_WRITES, marks.overlay_writes);
    }
    Ok(Sparsifier { graph, stats })
}

/// Build the marked edge *list* from any adjacency oracle (no edge ids
/// needed). This is the form used when the input is not materialized as a
/// CSR graph — e.g. the probe-counting experiments and the dynamic setting.
/// Returns endpoint pairs with possible duplicates (an edge can be marked
/// from both sides); deduplication happens wherever a graph is built.
pub fn mark_edges_oracle(
    g: &impl AdjacencyOracle,
    params: &SparsifierParams,
    rng: &mut impl Rng,
) -> Vec<(VertexId, VertexId)> {
    mark_edges_oracle_impl(g, params, rng, None)
}

/// [`mark_edges_oracle`] with unified work accounting: sampler RNG draws
/// and overlay writes are mirrored into `meter`. (Probe counts are the
/// caller's business — wrap the oracle in a
/// [`sparsimatch_graph::adjacency::CountingOracle`].)
pub fn mark_edges_oracle_metered(
    g: &impl AdjacencyOracle,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    meter: &mut WorkMeter,
) -> Vec<(VertexId, VertexId)> {
    mark_edges_oracle_impl(g, params, rng, Some(meter))
}

fn mark_edges_oracle_impl(
    g: &impl AdjacencyOracle,
    params: &SparsifierParams,
    rng: &mut impl Rng,
    meter: Option<&mut WorkMeter>,
) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    // One degree pass sizes both the sampler overlay and the output
    // buffer (each vertex marks ≤ min(deg, mark_cap) edges), so neither
    // grows inside the marking loop.
    let mut max_deg = 0usize;
    let mut mark_bound = 0usize;
    for v in 0..n {
        let deg = g.degree(VertexId::new(v));
        max_deg = max_deg.max(deg);
        mark_bound += deg.min(params.mark_cap());
    }
    let mut sampler = PosArraySampler::new(max_deg);
    let mut indices: Vec<u32> = Vec::with_capacity(params.mark_cap().max(1));
    let mut out = Vec::with_capacity(mark_bound);
    for v in 0..n {
        let v = VertexId::new(v);
        mark_indices_for_vertex(
            g,
            v,
            params.delta,
            params.mark_cap(),
            &mut sampler,
            rng,
            &mut indices,
        );
        for &i in &indices {
            out.push((v, g.neighbor(v, i as usize)));
        }
    }
    if let Some(meter) = meter {
        sampler.mirror_into(meter);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::analysis::arboricity::arboricity_bounds;
    use sparsimatch_graph::generators::{
        clique, clique_union, gnp, star, unit_disk, CliqueUnionConfig, UnitDiskConfig,
    };
    use sparsimatch_matching::blossom::maximum_matching;

    fn params(beta: usize, eps: f64, delta: usize) -> SparsifierParams {
        SparsifierParams::with_delta(beta, eps, delta)
    }

    #[test]
    fn sequential_mark_equals_parallel_single_shard() {
        // The scratch path's stage 1 must be byte-identical to the
        // parallel marker — ids, stats, and work counters — including on
        // a reused (dirty, oversized) buffer set.
        let mut rng = StdRng::seed_from_u64(40);
        let graphs = [
            clique(90),
            star(200),
            gnp(150, 0.08, &mut rng),
            sparsimatch_graph::csr::from_edges(0, []),
            sparsimatch_graph::csr::from_edges(5, []),
        ];
        let p = params(2, 0.4, 3);
        let mut sampler = PosArraySampler::new(1);
        let mut indices = vec![9u32; 7]; // deliberately dirty
        let mut keep = vec![3u32; 11];
        let mut ids = vec![EdgeId(5); 13];
        for (i, g) in graphs.iter().enumerate() {
            for seed in [0u64, 17, 99] {
                let par = mark_edges_parallel(g, &p, seed, 1).unwrap();
                let summary = mark_edges_sequential_into(
                    g,
                    &p,
                    seed,
                    &mut sampler,
                    &mut indices,
                    &mut keep,
                    &mut ids,
                );
                assert_eq!(par.ids, ids, "graph {i} seed {seed}");
                assert_eq!(par.stats.marks_placed, summary.stats.marks_placed);
                assert_eq!(
                    par.stats.low_degree_vertices,
                    summary.stats.low_degree_vertices
                );
                assert_eq!(par.stats.edges, summary.stats.edges);
                assert_eq!(par.rng_draws, summary.rng_draws, "graph {i} seed {seed}");
                assert_eq!(par.overlay_writes, summary.overlay_writes);
            }
        }
    }

    #[test]
    fn sparsifier_is_subgraph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(60, 0.3, &mut rng);
        let s = build_sparsifier(&g, &params(3, 0.5, 4), &mut rng);
        assert_eq!(s.graph.num_vertices(), g.num_vertices());
        for (_, u, v) in s.graph.edges() {
            assert!(g.has_edge(u, v), "sparsifier edge not in input");
        }
    }

    #[test]
    fn low_degree_vertices_keep_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = star(50); // center degree 49, leaves degree 1
        let p = params(1, 0.5, 3); // mark_cap = 6 < 49
        let s = build_sparsifier(&g, &p, &mut rng);
        // All leaves are low degree and mark their only edge, so G_Δ = G.
        assert_eq!(s.graph.num_edges(), 49);
        assert_eq!(s.stats.low_degree_vertices, 49);
    }

    #[test]
    fn high_degree_vertices_mark_exactly_delta() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = clique(100);
        let p = params(1, 0.5, 5);
        let s = build_sparsifier(&g, &p, &mut rng);
        // Every vertex has degree 99 > cap 10, so marks 5: total 500 marks,
        // edges <= 500 (collisions dedupe).
        assert_eq!(s.stats.marks_placed, 500);
        assert!(s.stats.edges <= 500);
        assert!(s.stats.edges >= 250, "at least marks/2 distinct edges");
        assert_eq!(s.stats.low_degree_vertices, 0);
    }

    #[test]
    fn naive_size_bound_holds_always() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let g = gnp(80, 0.4, &mut rng);
            let p = params(2, 0.5, 3);
            let s = build_sparsifier(&g, &p, &mut rng);
            assert!(s.stats.edges <= p.naive_size_bound(g.num_vertices()));
        }
    }

    #[test]
    fn observation_2_10_size_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = clique_union(
            CliqueUnionConfig {
                n: 100,
                diversity: 2,
                clique_size: 25,
            },
            &mut rng,
        );
        let p = params(2, 0.5, 4);
        let mcm = maximum_matching(&g).len();
        for _ in 0..5 {
            let s = build_sparsifier(&g, &p, &mut rng);
            assert!(
                s.stats.edges <= p.size_bound(mcm),
                "{} > bound {}",
                s.stats.edges,
                p.size_bound(mcm)
            );
        }
    }

    #[test]
    fn observation_2_12_arboricity_bound() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = clique(120);
        let p = params(1, 0.5, 4);
        let s = build_sparsifier(&g, &p, &mut rng);
        let (_, hi) = arboricity_bounds(&s.graph);
        assert!(
            hi <= p.arboricity_bound(),
            "arboricity upper bound {hi} exceeds {}",
            p.arboricity_bound()
        );
    }

    #[test]
    fn preserves_matching_on_unit_disk() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = unit_disk(
            UnitDiskConfig::with_expected_degree(300, 1.0, 20.0),
            &mut rng,
        );
        let p = SparsifierParams::practical(5, 0.5);
        let exact = maximum_matching(&g).len();
        let s = build_sparsifier(&g, &p, &mut rng);
        let sparse_mcm = maximum_matching(&s.graph).len();
        assert!(
            (sparse_mcm as f64) * 1.5 >= exact as f64,
            "sparse {sparse_mcm} vs exact {exact}"
        );
    }

    #[test]
    fn oracle_marks_match_graph_structure() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gnp(40, 0.3, &mut rng);
        let p = params(2, 0.5, 3);
        let marks = mark_edges_oracle(&g, &p, &mut rng);
        for &(u, v) in &marks {
            assert!(g.has_edge(u, v));
        }
        // Each vertex contributes min(deg, cap or delta) marks.
        let mut per_vertex = vec![0usize; g.num_vertices()];
        for &(u, _) in &marks {
            per_vertex[u.index()] += 1;
        }
        for (v, &count) in per_vertex.iter().enumerate() {
            let deg = g.degree(VertexId::new(v));
            let expect = if deg <= p.mark_cap() { deg } else { p.delta };
            assert_eq!(count, expect);
        }
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = clique_union(
            CliqueUnionConfig {
                n: 200,
                diversity: 2,
                clique_size: 40,
            },
            &mut rng,
        );
        let p = params(2, 0.4, 6);
        let reference = build_sparsifier_parallel(&g, &p, 42, 1).unwrap();
        for threads in [2usize, 4, 7] {
            let s = build_sparsifier_parallel(&g, &p, 42, threads).unwrap();
            let e1: Vec<_> = reference
                .graph
                .edges()
                .map(|(_, u, v)| (u.0, v.0))
                .collect();
            let e2: Vec<_> = s.graph.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            assert_eq!(e1, e2, "threads = {threads}");
            assert_eq!(s.stats.marks_placed, reference.stats.marks_placed);
            assert_eq!(
                s.stats.low_degree_vertices,
                reference.stats.low_degree_vertices
            );
        }
    }

    #[test]
    fn parallel_build_meets_same_bounds() {
        let g = clique(150);
        let p = params(1, 0.5, 5);
        let s = build_sparsifier_parallel(&g, &p, 7, 4).unwrap();
        assert!(s.stats.edges <= p.naive_size_bound(150));
        for (_, u, v) in s.graph.edges() {
            assert!(g.has_edge(u, v));
        }
        let mcm = maximum_matching(&s.graph).len();
        assert!(mcm * 2 >= 75, "sparse mcm {mcm}");
    }

    #[test]
    fn parallel_build_rejects_bad_thread_counts() {
        let g = clique(10);
        let p = params(1, 0.5, 2);
        assert_eq!(
            build_sparsifier_parallel(&g, &p, 1, 0).unwrap_err(),
            ThreadCountError { requested: 0 }
        );
        let err = build_sparsifier_parallel(&g, &p, 1, MAX_THREADS + 1).unwrap_err();
        assert_eq!(err.requested, MAX_THREADS + 1);
        assert!(err.to_string().contains("between 1 and 64"));
        assert!(build_sparsifier_parallel(&g, &p, 1, MAX_THREADS).is_ok());
    }

    #[test]
    fn metered_build_matches_unmetered_and_counts_work() {
        let g = clique(80);
        let p = params(1, 0.5, 4);
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        let mut meter = sparsimatch_obs::WorkMeter::new();
        let plain = build_sparsifier(&g, &p, &mut rng1);
        let metered = build_sparsifier_metered(&g, &p, &mut rng2, &mut meter);
        let e1: Vec<_> = plain.graph.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let e2: Vec<_> = metered.graph.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(e1, e2, "metering must not perturb the build");
        use sparsimatch_obs::keys;
        assert_eq!(meter.get(keys::DEGREE_PROBES), 2 * 80);
        assert_eq!(
            meter.get(keys::NEIGHBOR_PROBES),
            metered.stats.marks_placed as u64
        );
        assert_eq!(
            meter.get(keys::SPARSIFIER_EDGES),
            metered.stats.edges as u64
        );
        // Every vertex is high degree (79 > cap), so each samples delta
        // indices: one RNG draw and one overlay write apiece.
        assert_eq!(meter.get(keys::RNG_DRAWS), 80 * p.delta as u64);
        assert_eq!(meter.get(keys::OVERLAY_WRITES), 80 * p.delta as u64);
    }

    #[test]
    fn metered_parallel_totals_are_thread_count_invariant() {
        let g = clique(60);
        let p = params(1, 0.5, 3);
        let mut m1 = sparsimatch_obs::WorkMeter::new();
        let mut m4 = sparsimatch_obs::WorkMeter::new();
        let s1 = build_sparsifier_parallel_metered(&g, &p, 9, 1, &mut m1).unwrap();
        let s4 = build_sparsifier_parallel_metered(&g, &p, 9, 4, &mut m4).unwrap();
        assert_eq!(s1.stats.edges, s4.stats.edges);
        let c1: Vec<_> = m1.counters().map(|(k, v)| (k.to_string(), v)).collect();
        let c4: Vec<_> = m4.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(c1, c4);
    }

    #[test]
    fn empty_graph_sparsifies_to_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = sparsimatch_graph::csr::from_edges(10, []);
        let s = build_sparsifier(&g, &params(1, 0.5, 2), &mut rng);
        assert_eq!(s.graph.num_edges(), 0);
        assert_eq!(s.stats.marks_placed, 0);
    }

    fn assert_thread_count_invariant(g: &CsrGraph, p: &SparsifierParams, label: &str) {
        let reference = build_sparsifier_parallel(g, p, 42, 1).unwrap();
        let e1: Vec<_> = reference
            .graph
            .edges()
            .map(|(_, u, v)| (u.0, v.0))
            .collect();
        for threads in [2usize, 4, 8] {
            let s = build_sparsifier_parallel(g, p, 42, threads).unwrap();
            let e2: Vec<_> = s.graph.edges().map(|(_, u, v)| (u.0, v.0)).collect();
            assert_eq!(e1, e2, "{label}: threads = {threads}");
            assert_eq!(
                s.stats.marks_placed, reference.stats.marks_placed,
                "{label}"
            );
            assert_eq!(s.stats.edges, reference.stats.edges, "{label}");
        }
    }

    #[test]
    fn parallel_build_invariant_on_adversarial_families() {
        use sparsimatch_graph::generators::clique_minus_edge;
        // Star: one hub whose degree dwarfs every per-worker range — the
        // worker holding the hub sizes its overlay up, the rest stay tiny.
        assert_thread_count_invariant(&star(5_000), &params(1, 0.5, 3), "star");
        // Lemma 2.13's clique-minus-edge instance.
        assert_thread_count_invariant(
            &clique_minus_edge(120, (0, 119)),
            &params(1, 0.5, 4),
            "clique-minus-edge",
        );
    }

    #[test]
    fn parallel_build_invariant_on_degenerate_graphs() {
        let empty = sparsimatch_graph::csr::from_edges(0, []);
        assert_thread_count_invariant(&empty, &params(1, 0.5, 2), "empty");
        let singleton = sparsimatch_graph::csr::from_edges(1, []);
        assert_thread_count_invariant(&singleton, &params(1, 0.5, 2), "singleton");
        let one_edge = sparsimatch_graph::csr::from_edges(2, [(0, 1)]);
        assert_thread_count_invariant(&one_edge, &params(1, 0.5, 2), "one-edge");
    }

    #[test]
    fn sequential_and_parallel_agree_on_marked_edge_sets_shape() {
        // The sequential RNG-stream build and the seeded parallel build use
        // different randomness, but both must respect the per-vertex mark
        // budget; compare the deterministic consequences.
        let g = clique(90);
        let p = params(1, 0.5, 4);
        let mut rng = StdRng::seed_from_u64(13);
        let seq = build_sparsifier(&g, &p, &mut rng);
        let par = build_sparsifier_parallel(&g, &p, 13, 4).unwrap();
        assert_eq!(seq.stats.marks_placed, par.stats.marks_placed);
        assert_eq!(seq.stats.low_degree_vertices, par.stats.low_degree_vertices);
        assert!(par.stats.edges <= p.naive_size_bound(90));
    }
}
