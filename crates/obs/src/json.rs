//! A small self-contained JSON value type with a deterministic serializer
//! and a strict parser.
//!
//! The paper's claims are unit counts, so metrics files must be exactly
//! reproducible: objects keep insertion order, integers serialize as
//! integers (never through `f64`), and the printer is byte-deterministic
//! for a fixed value. The parser accepts standard JSON (RFC 8259) and is
//! used by tests to consume `results/*.json` back.
//!
//! The parser is also the wire format of the `sparsimatch serve` daemon,
//! so it is hardened against untrusted input: container nesting is capped
//! at [`MAX_PARSE_DEPTH`] (hostile `[[[[…` returns [`ParseErrorKind::TooDeep`]
//! instead of overflowing the stack), raw control bytes inside strings are
//! rejected per RFC 8259 §7, and duplicate object keys are rejected at
//! parse time (a daemon request must be unambiguous about which value
//! wins; [`Json::get`] returns the *first* match, while naive re-serialization
//! would have kept both).

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved, so serialization is
/// deterministic in construction order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object (append members with [`Json::set`]).
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Append or replace member `key` of an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Json::Object(members) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
        self
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one (or a non-negative
    /// signed integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a trailing newline —
    /// the byte-deterministic on-disk format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip, deterministic for
                    // identical bits, and always includes enough digits.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Rejects trailing garbage, container nesting
    /// deeper than [`MAX_PARSE_DEPTH`], raw control characters inside
    /// strings, and duplicate object keys — every failure is a typed
    /// [`ParseError`], never a panic or a stack overflow.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

/// Maximum container ([`Json::Array`] / [`Json::Object`]) nesting depth
/// [`Json::parse`] accepts. Deeper input returns
/// [`ParseErrorKind::TooDeep`] instead of recursing to a stack overflow —
/// the parser is the daemon's wire format, so `[[[[…` must be an error
/// response, not a crash.
pub const MAX_PARSE_DEPTH: usize = 128;

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The class of a [`ParseError`], so callers (the serve daemon's error
/// responses, the regression tests) can branch on *what* was rejected
/// without string-matching the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Plain syntax failure: unexpected byte, truncated input, trailing
    /// garbage, malformed number or literal.
    Syntax,
    /// Container nesting exceeded [`MAX_PARSE_DEPTH`].
    TooDeep,
    /// A raw control byte (< 0x20) appeared inside a string; RFC 8259
    /// requires those to be escaped.
    ControlChar,
    /// A malformed escape sequence. The offset points at the backslash
    /// that starts the escape, not mid-sequence.
    BadEscape,
    /// The same key appeared twice in one object.
    DuplicateKey,
}

/// A JSON parse error with byte offset and a typed [`ParseErrorKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Which hardening rule or syntax rule was violated.
    pub kind: ParseErrorKind,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError::of(ParseErrorKind::Syntax, offset, message)
    }

    fn of(kind: ParseErrorKind, offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            check_depth(depth, *pos)?;
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            check_depth(depth, *pos)?;
            *pos += 1;
            let mut members: Vec<(String, Json)> = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key_pos = *pos;
                let key = parse_string(bytes, pos)?;
                if members.iter().any(|(k, _)| *k == key) {
                    return Err(ParseError::of(
                        ParseErrorKind::DuplicateKey,
                        key_pos,
                        format!("duplicate object key {key:?}"),
                    ));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

/// Refuse to open a container at `depth` == [`MAX_PARSE_DEPTH`]: a
/// document of exactly the cap parses, one level deeper does not.
fn check_depth(depth: usize, pos: usize) -> Result<(), ParseError> {
    if depth >= MAX_PARSE_DEPTH {
        Err(ParseError::of(
            ParseErrorKind::TooDeep,
            pos,
            format!("nesting exceeds the depth cap of {MAX_PARSE_DEPTH}"),
        ))
    } else {
        Ok(())
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                // Escape errors point at the backslash that starts the
                // sequence, not at whichever byte inside it went wrong.
                let esc_start = *pos;
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let bad = || {
                            ParseError::of(ParseErrorKind::BadEscape, esc_start, "bad \\u escape")
                        };
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(bad)?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| bad())?;
                        // Surrogate pairs are not needed for our own files;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError::of(
                            ParseErrorKind::BadEscape,
                            esc_start,
                            "bad escape",
                        ))
                    }
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                // RFC 8259 §7: control characters must be escaped.
                return Err(ParseError::of(
                    ParseErrorKind::ControlChar,
                    *pos,
                    format!("raw control character 0x{b:02x} in string"),
                ));
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at(start, "expected value"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| ParseError::at(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut obj = Json::object();
        obj.set("name", "exp");
        obj.set("count", 42u64);
        obj.set("neg", -3i64);
        obj.set("ratio", 0.5f64);
        obj.set("flag", true);
        obj.set("nothing", Json::Null);
        obj.set("items", vec![1u64, 2, 3]);
        let mut inner = Json::object();
        inner.set("k", "v\"quoted\"\n");
        obj.set("inner", inner);
        obj
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = sample();
        for text in [v.to_pretty(), v.to_compact()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_pretty(), sample().to_pretty());
        // Insertion order is preserved, not sorted.
        let text = sample().to_compact();
        assert!(text.find("\"name\"").unwrap() < text.find("\"count\"").unwrap());
    }

    #[test]
    fn integers_stay_integers() {
        let text = "{\"big\": 18446744073709551615, \"neg\": -9007199254740993}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("big").unwrap(), &Json::UInt(u64::MAX));
        assert_eq!(v.get("neg").unwrap(), &Json::Int(-9007199254740993));
    }

    #[test]
    fn floats_format_with_decimal_point() {
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(0.25).to_compact(), "0.25");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
    }

    /// Regression (ISSUE 6): hostile `[[[[…` / `{"a":{"a":…` input used to
    /// recurse without a cap and overflow the stack. The cap boundary is
    /// exact: `MAX_PARSE_DEPTH` nested containers parse, one more does not.
    #[test]
    fn depth_cap_is_exact_at_the_boundary() {
        let nest = |d: usize| format!("{}1{}", "[".repeat(d), "]".repeat(d));
        assert!(Json::parse(&nest(MAX_PARSE_DEPTH)).is_ok());
        let err = Json::parse(&nest(MAX_PARSE_DEPTH + 1)).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep);
        assert_eq!(err.offset, MAX_PARSE_DEPTH, "error at the opening bracket");

        // Same cap for objects, and for input that never closes at all
        // (the original DoS shape: no closing brackets needed to crash).
        let mut obj = String::new();
        for _ in 0..(MAX_PARSE_DEPTH + 1) {
            obj.push_str("{\"a\":");
        }
        assert_eq!(Json::parse(&obj).unwrap_err().kind, ParseErrorKind::TooDeep);
        let open_only = "[".repeat(1 << 20);
        assert_eq!(
            Json::parse(&open_only).unwrap_err().kind,
            ParseErrorKind::TooDeep
        );
    }

    /// Regression (ISSUE 6): raw control bytes inside strings were
    /// accepted, violating RFC 8259 §7. Their *escaped* forms stay legal.
    #[test]
    fn raw_control_characters_in_strings_are_rejected() {
        for b in 0u8..0x20 {
            let text = format!("\"a{}b\"", b as char);
            let err = Json::parse(&text).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::ControlChar, "byte 0x{b:02x}");
            assert_eq!(err.offset, 2, "byte 0x{b:02x}");
        }
        assert_eq!(
            Json::parse("\"a\\u0001b\\n\"").unwrap(),
            Json::Str("a\u{1}b\n".to_string())
        );
        // 0x20 (space) and above are fine raw.
        assert_eq!(Json::parse("\" \"").unwrap(), Json::Str(" ".to_string()));
    }

    /// Regression (ISSUE 6): duplicate object keys were pushed silently,
    /// so `get` (first match) and serialization (both members) disagreed
    /// about which value wins. Now a parse-time error.
    #[test]
    fn duplicate_object_keys_are_rejected() {
        let err = Json::parse("{\"a\":1,\"a\":2}").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DuplicateKey);
        assert_eq!(err.offset, 7, "error at the second key");
        assert!(err.message.contains("\"a\""), "{}", err.message);
        // Nested objects each get their own key namespace.
        assert!(Json::parse("{\"a\":{\"a\":1},\"b\":{\"a\":2}}").is_ok());
        // The duplicate is detected even deep inside a document.
        assert_eq!(
            Json::parse("[{\"x\":[{\"k\":1,\"k\":1}]}]")
                .unwrap_err()
                .kind,
            ParseErrorKind::DuplicateKey
        );
    }

    /// Regression (ISSUE 6): `\u` escape errors used to be reported at the
    /// `u` (mid-escape); they now point at the backslash that starts the
    /// sequence.
    #[test]
    fn escape_errors_point_at_the_backslash() {
        // offset 0 is the quote, offset 3 is the backslash.
        for text in ["\"ab\\uZZZZ\"", "\"ab\\u12\"", "\"ab\\u", "\"ab\\q\""] {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::BadEscape, "{text}");
            assert_eq!(err.offset, 3, "{text}");
        }
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("exp"));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("missing").is_none());
    }
}
