//! A small self-contained JSON value type with a deterministic serializer
//! and a strict parser.
//!
//! The paper's claims are unit counts, so metrics files must be exactly
//! reproducible: objects keep insertion order, integers serialize as
//! integers (never through `f64`), and the printer is byte-deterministic
//! for a fixed value. The parser accepts standard JSON (RFC 8259) and is
//! used by tests to consume `results/*.json` back.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved, so serialization is
/// deterministic in construction order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object (append members with [`Json::set`]).
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Append or replace member `key` of an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Json::Object(members) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
        self
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one (or a non-negative
    /// signed integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a trailing newline —
    /// the byte-deterministic on-disk format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip, deterministic for
                    // identical bits, and always includes enough digits.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| ParseError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for our own files;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at(start, "expected value"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| ParseError::at(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut obj = Json::object();
        obj.set("name", "exp");
        obj.set("count", 42u64);
        obj.set("neg", -3i64);
        obj.set("ratio", 0.5f64);
        obj.set("flag", true);
        obj.set("nothing", Json::Null);
        obj.set("items", vec![1u64, 2, 3]);
        let mut inner = Json::object();
        inner.set("k", "v\"quoted\"\n");
        obj.set("inner", inner);
        obj
    }

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = sample();
        for text in [v.to_pretty(), v.to_compact()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_pretty(), sample().to_pretty());
        // Insertion order is preserved, not sorted.
        let text = sample().to_compact();
        assert!(text.find("\"name\"").unwrap() < text.find("\"count\"").unwrap());
    }

    #[test]
    fn integers_stay_integers() {
        let text = "{\"big\": 18446744073709551615, \"neg\": -9007199254740993}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("big").unwrap(), &Json::UInt(u64::MAX));
        assert_eq!(v.get("neg").unwrap(), &Json::Int(-9007199254740993));
    }

    #[test]
    fn floats_format_with_decimal_point() {
        assert_eq!(Json::Float(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(0.25).to_compact(), "0.25");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("exp"));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("missing").is_none());
    }
}
