//! Typed field extraction for JSON wire messages.
//!
//! The serve daemon (and any other consumer of [`Json`] documents
//! arriving from outside the process) needs the same few moves over and
//! over: "this must be an object", "field `n` must be an unsigned
//! integer", "field `seed` is optional and defaults to 0", "no keys we
//! don't understand". Hand-rolling those checks at every call site
//! produces inconsistent error messages and, worse, silently tolerant
//! parsers. These helpers centralize the checks and always name the
//! offending field, so a malformed request can be bounced back to the
//! client with a message that says exactly what to fix.
//!
//! All helpers take the *enclosing object* and a field name. A present
//! field of the wrong type is always an error — `opt_*` means "absent is
//! fine", never "wrong type is fine".

use crate::json::Json;

/// A field-level schema violation: which field, and what is wrong with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldError {
    /// The offending field (or `"."` for the document root).
    pub field: String,
    /// What was expected vs. found.
    pub message: String,
}

impl FieldError {
    fn new(field: &str, message: impl Into<String>) -> Self {
        FieldError {
            field: field.to_string(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field {:?}: {}", self.field, self.message)
    }
}

impl std::error::Error for FieldError {}

/// The document must be a JSON object; returns its members.
pub fn as_object(doc: &Json) -> Result<&[(String, Json)], FieldError> {
    match doc {
        Json::Object(members) => Ok(members),
        other => Err(FieldError::new(
            ".",
            format!("expected an object, got {}", kind_name(other)),
        )),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "a boolean",
        Json::Int(_) | Json::UInt(_) => "an integer",
        Json::Float(_) => "a number",
        Json::Str(_) => "a string",
        Json::Array(_) => "an array",
        Json::Object(_) => "an object",
    }
}

/// A required field of any type.
pub fn req<'a>(doc: &'a Json, field: &str) -> Result<&'a Json, FieldError> {
    as_object(doc)?;
    doc.get(field)
        .ok_or_else(|| FieldError::new(field, "missing required field"))
}

/// A required string field.
pub fn req_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, FieldError> {
    let v = req(doc, field)?;
    v.as_str()
        .ok_or_else(|| FieldError::new(field, format!("expected a string, got {}", kind_name(v))))
}

/// A required unsigned-integer field.
pub fn req_u64(doc: &Json, field: &str) -> Result<u64, FieldError> {
    let v = req(doc, field)?;
    v.as_u64().ok_or_else(|| {
        FieldError::new(
            field,
            format!("expected an unsigned integer, got {}", kind_name(v)),
        )
    })
}

/// A required array field.
pub fn req_array<'a>(doc: &'a Json, field: &str) -> Result<&'a [Json], FieldError> {
    let v = req(doc, field)?;
    v.as_array()
        .ok_or_else(|| FieldError::new(field, format!("expected an array, got {}", kind_name(v))))
}

/// An optional unsigned-integer field with a default.
pub fn opt_u64(doc: &Json, field: &str, default: u64) -> Result<u64, FieldError> {
    as_object(doc)?;
    match doc.get(field) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            FieldError::new(
                field,
                format!("expected an unsigned integer, got {}", kind_name(v)),
            )
        }),
    }
}

/// An optional finite-number field with a default. Accepts integers too
/// (they widen losslessly for the magnitudes wire messages carry).
pub fn opt_f64(doc: &Json, field: &str, default: f64) -> Result<f64, FieldError> {
    as_object(doc)?;
    match doc.get(field) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() => Ok(x),
            Some(x) => Err(FieldError::new(field, format!("must be finite, got {x}"))),
            None => Err(FieldError::new(
                field,
                format!("expected a number, got {}", kind_name(v)),
            )),
        },
    }
}

/// An optional boolean field with a default.
pub fn opt_bool(doc: &Json, field: &str, default: bool) -> Result<bool, FieldError> {
    as_object(doc)?;
    match doc.get(field) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| {
            FieldError::new(field, format!("expected a boolean, got {}", kind_name(v)))
        }),
    }
}

/// An optional string field (no default: absent stays `None`).
pub fn opt_str<'a>(doc: &'a Json, field: &str) -> Result<Option<&'a str>, FieldError> {
    as_object(doc)?;
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| {
            FieldError::new(field, format!("expected a string, got {}", kind_name(v)))
        }),
    }
}

/// Reject any key outside `known`: wire requests must be fully
/// understood, not best-effort (a typo'd optional field would otherwise
/// silently fall back to its default).
pub fn expect_known_fields(doc: &Json, known: &[&str]) -> Result<(), FieldError> {
    for (key, _) in as_object(doc)? {
        if !known.contains(&key.as_str()) {
            return Err(FieldError::new(key, "unknown field"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::parse(r#"{"cmd":"solve","n":40,"eps":0.5,"pairs":true,"ops":[1,2]}"#).unwrap()
    }

    #[test]
    fn required_fields() {
        let d = doc();
        assert_eq!(req_str(&d, "cmd").unwrap(), "solve");
        assert_eq!(req_u64(&d, "n").unwrap(), 40);
        assert_eq!(req_array(&d, "ops").unwrap().len(), 2);
        let e = req_u64(&d, "missing").unwrap_err();
        assert_eq!(e.field, "missing");
        let e = req_u64(&d, "cmd").unwrap_err();
        assert!(e.message.contains("unsigned integer"), "{e}");
    }

    #[test]
    fn optional_fields_default_when_absent_but_never_coerce() {
        let d = doc();
        assert_eq!(opt_u64(&d, "seed", 7).unwrap(), 7);
        assert_eq!(opt_f64(&d, "eps", 0.1).unwrap(), 0.5);
        assert!(opt_bool(&d, "pairs", false).unwrap());
        assert_eq!(opt_str(&d, "family").unwrap(), None);
        // Present but mistyped is an error, not the default.
        assert!(opt_u64(&d, "eps", 0).is_err());
        assert!(opt_bool(&d, "n", false).is_err());
        assert!(opt_str(&d, "n").is_err());
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        let mut d = Json::object();
        d.set("x", f64::NAN);
        let e = opt_f64(&d, "x", 0.0).unwrap_err();
        assert!(e.message.contains("finite"), "{e}");
    }

    #[test]
    fn non_objects_fail_at_the_root() {
        let arr = Json::parse("[1]").unwrap();
        assert_eq!(as_object(&arr).unwrap_err().field, ".");
        assert!(req_str(&arr, "cmd").is_err());
        assert!(opt_u64(&arr, "n", 0).is_err());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let d = doc();
        assert!(expect_known_fields(&d, &["cmd", "n", "eps", "pairs", "ops"]).is_ok());
        let e = expect_known_fields(&d, &["cmd", "n", "eps", "pairs"]).unwrap_err();
        assert_eq!(e.field, "ops");
        assert_eq!(e.message, "unknown field");
    }
}
