//! A counting global allocator (behind the `alloc-count` feature).
//!
//! The steady-state performance story of the scratch-arena pipeline is a
//! claim about heap traffic — "the second and later solves on a warm
//! `PipelineScratch` allocate nothing" — and claims about heap traffic
//! need an observer. [`CountingAllocator`] wraps the system allocator and
//! counts every `alloc` / `alloc_zeroed` / `realloc` call, both
//! process-wide and per-thread, without changing allocation behavior.
//!
//! Consumers install it themselves (a `#[global_allocator]` must live in
//! the final binary or test crate, never in a library):
//!
//! ```ignore
//! use sparsimatch_obs::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//! ```
//!
//! and then read [`totals`] (whole process) or [`thread_totals`] (calling
//! thread only) around the region of interest. Per-thread counters make
//! the zero-allocation assertion robust against unrelated background
//! threads; the process-wide totals feed the `alloc.bytes` /
//! `alloc.count` meter keys in `--metrics-json` and the benchmark
//! allocation columns.
//!
//! Deallocations are deliberately not tracked: the scratch arena's
//! `clear()`-not-drop contract is about *acquiring* memory in the steady
//! state, and frees would only add noise to that signal.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation totals: bytes requested and number of allocator calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Total bytes requested across counted allocator calls.
    pub bytes: u64,
    /// Number of counted allocator calls.
    pub count: u64,
}

static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_COUNT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` initializers make first access allocation-free, so counting
    // from inside the allocator cannot recurse into itself.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn record(size: usize) {
    GLOBAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    GLOBAL_COUNT.fetch_add(1, Ordering::Relaxed);
    // `try_with` instead of `with`: during thread teardown the TLS slot is
    // gone, and an allocation there must still succeed (uncounted
    // per-thread is fine; the globals above already saw it).
    let _ = THREAD_BYTES.try_with(|b| b.set(b.get() + size as u64));
    let _ = THREAD_COUNT.try_with(|c| c.set(c.get() + 1));
}

/// Process-wide totals since process start (monotonic).
pub fn totals() -> AllocTotals {
    AllocTotals {
        bytes: GLOBAL_BYTES.load(Ordering::Relaxed),
        count: GLOBAL_COUNT.load(Ordering::Relaxed),
    }
}

/// Totals for the calling thread since it started (monotonic).
pub fn thread_totals() -> AllocTotals {
    AllocTotals {
        bytes: THREAD_BYTES.with(Cell::get),
        count: THREAD_COUNT.with(Cell::get),
    }
}

/// The counting wrapper around [`System`]. Install with
/// `#[global_allocator]` in a binary or test crate.
pub struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counting side effects never touch the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
