//! Unified work-accounting and observability layer for `sparsimatch`.
//!
//! The paper's guarantees are stated in discrete units — adjacency probes,
//! CONGEST messages and rounds, worst-case per-update work — and the rest
//! of the workspace verifies those bounds by counting. Before this crate,
//! each layer counted with its own ad-hoc struct (`ProbeCounts`,
//! `Metrics`, `UpdateReport`, `StreamStats`); this crate gives them one
//! sink and one export format:
//!
//! * [`WorkMeter`] — named monotonic counters (see [`meter::keys`] for the
//!   shared names), high-water maxima, and wall-clock span timers.
//! * [`Json`] — a dependency-free JSON value with a byte-deterministic
//!   serializer and a strict parser, used for `--metrics-json` files and
//!   the experiment harness's `results/<exp>.json` outputs.
//! * [`wire`] — typed field-extraction helpers over [`Json`] for
//!   request/response schemas arriving from outside the process (the
//!   serve daemon's wire format).
//! * `alloc` (behind the `alloc-count` feature) — a counting global
//!   allocator that makes heap traffic observable, feeding the
//!   `alloc.bytes` / `alloc.count` meter keys and the steady-state
//!   zero-allocation tests.
//!
//! Counter values are deterministic for a fixed seed; wall-clock timings
//! are segregated (see [`WorkMeter::snapshot_counters`] vs.
//! [`WorkMeter::snapshot_full`]) so metric files can be byte-stable.
//!
//! This crate deliberately has no dependencies, so every other crate in
//! the workspace can depend on it without cycles.

#![deny(missing_docs)]

#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod json;
pub mod meter;
pub mod wire;

pub use json::{Json, ParseError, ParseErrorKind, MAX_PARSE_DEPTH};
pub use meter::{keys, SpanStats, WorkMeter};
