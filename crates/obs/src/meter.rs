//! The [`WorkMeter`]: named monotonic work counters plus lightweight
//! wall-clock span timers.
//!
//! The sparsification theorems bound *unit counts* — adjacency probes
//! (Thm 3.1), messages and rounds (Thm 3.2/3.3), per-update work
//! (Thm 3.5) — so the meter tracks integers, never rates. Counter values
//! are deterministic for a fixed seed; wall-clock timings are kept in a
//! separate section so snapshots can stay byte-stable (see
//! [`WorkMeter::snapshot_counters`]).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::Json;

/// Well-known counter names, shared across crates so that the CLI and the
/// experiment harness produce uniform metric files. Using the constants is
/// not required — any name works — but the wired call sites stick to them.
pub mod keys {
    /// Degree probes against a read-only adjacency oracle.
    pub const DEGREE_PROBES: &str = "adjacency.degree_probes";
    /// Neighbor probes against a read-only adjacency oracle.
    pub const NEIGHBOR_PROBES: &str = "adjacency.neighbor_probes";
    /// Draws taken from the pseudorandom generator.
    pub const RNG_DRAWS: &str = "sampler.rng_draws";
    /// Writes into the position-array sampler overlay.
    pub const OVERLAY_WRITES: &str = "sampler.overlay_writes";
    /// Edges appended to the sparsifier.
    pub const SPARSIFIER_EDGES: &str = "sparsifier.edges";
    /// Edge visits performed by bounded augmenting-path search.
    pub const EDGE_VISITS: &str = "matching.edge_visits";
    /// Augmenting-path searches started.
    pub const AUG_SEARCHES: &str = "matching.searches";
    /// Augmentations applied.
    pub const AUGMENTATIONS: &str = "matching.augmentations";
    /// CONGEST rounds simulated.
    pub const ROUNDS: &str = "distsim.rounds";
    /// Messages sent in the simulation.
    pub const MESSAGES: &str = "distsim.messages";
    /// Total message bits sent.
    pub const MESSAGE_BITS: &str = "distsim.bits";
    /// Largest single message, in bits (a maximum, not a sum).
    pub const MAX_MESSAGE_BITS: &str = "distsim.max_message_bits";
    /// Host-side payload clones performed by the simulated transport.
    pub const MESSAGES_CLONED: &str = "distsim.messages_cloned";
    /// Dynamic-scheme updates applied.
    pub const UPDATES: &str = "dynamic.updates";
    /// Work units spent across dynamic updates.
    pub const UPDATE_WORK: &str = "dynamic.work";
    /// Worst single-update work (a maximum, not a sum).
    pub const MAX_UPDATE_WORK: &str = "dynamic.max_update_work";
    /// Edges consumed from a stream.
    pub const EDGES_SEEN: &str = "stream.edges_seen";
    /// Edges retained by a streaming matcher.
    pub const EDGES_RETAINED: &str = "stream.edges_retained";
    /// Messages lost to injected drops or crashed endpoints.
    pub const FAULTS_DROPPED: &str = "faults.dropped";
    /// Extra message deliveries from injected duplication (or ack-loss
    /// retransmits).
    pub const FAULTS_DUPLICATED: &str = "faults.duplicated";
    /// Message retransmissions performed by the ack/retry resilience layer.
    pub const FAULTS_RETRIES: &str = "faults.retries";
    /// Stream-scan restarts performed by the streaming build's retry
    /// policy (one per failed pass attempt that was retried).
    pub const IO_RETRIES: &str = "io.retries";
    /// Injected transient `EIO` aborts observed on the stream path.
    pub const IO_FAULTS_EIO: &str = "io.faults.eio";
    /// Injected short reads (stream truncated before the declared edges).
    pub const IO_FAULTS_SHORT_READS: &str = "io.faults.short_reads";
    /// Injected torn trailing lines on the stream path.
    pub const IO_FAULTS_TORN_LINES: &str = "io.faults.torn_lines";
    /// Injected between-pass header mutations on the stream path.
    pub const IO_FAULTS_HEADER_MUTATIONS: &str = "io.faults.header_mutations";
    /// Node-rounds spent crashed (summed over nodes and rounds).
    pub const FAULTS_CRASHED_ROUNDS: &str = "faults.crashed_rounds";
    /// Heap bytes requested from the global allocator during the run.
    /// Only populated when the process installs the `alloc-count`
    /// counting allocator; otherwise absent from metric files.
    pub const ALLOC_BYTES: &str = "alloc.bytes";
    /// Heap allocation calls during the run (same gating as
    /// [`ALLOC_BYTES`]).
    pub const ALLOC_COUNT: &str = "alloc.count";
    /// Span: pipeline stage 1, marking edges for the sparsifier.
    pub const STAGE_MARK: &str = "stage.mark";
    /// Span: pipeline stage 2, extracting the sparsifier CSR.
    pub const STAGE_EXTRACT: &str = "stage.extract";
    /// Span: pipeline stage 3, matching on the sparsifier.
    pub const STAGE_MATCH: &str = "stage.match";
    /// Span: the whole sparsify-and-match pipeline.
    pub const PIPELINE_TOTAL: &str = "pipeline.total";
}

/// Accumulated wall-clock time for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_nanos: u128,
}

/// Named monotonic counters, maxima, and span timers.
///
/// Counters only ever grow (use [`WorkMeter::record_max`] for
/// high-water-mark style values). `BTreeMap` keeps iteration — and thus
/// every snapshot — in stable lexicographic order.
#[derive(Clone, Debug, Default)]
pub struct WorkMeter {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
}

impl WorkMeter {
    /// A meter with no counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Add one to counter `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raise maximum `name` to at least `value`.
    pub fn record_max(&mut self, name: &str, value: u64) {
        let slot = self.maxima.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of maximum `name` (zero if never touched).
    pub fn get_max(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    /// Accumulated stats for span `name`.
    pub fn span_stats(&self, name: &str) -> SpanStats {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Iterate all counters in lexicographic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold an externally measured duration into span `name`. Used by code
    /// that times with its own `Instant` (e.g. pipeline stages timed
    /// whether or not a meter is attached) and only reports when one is.
    pub fn add_span(&mut self, name: &str, count: u64, nanos: u128) {
        let span = self.spans.entry(name.to_string()).or_default();
        span.count += count;
        span.total_nanos += nanos;
    }

    /// Time `body`, folding the elapsed wall-clock time into span `name`.
    pub fn time<T>(&mut self, name: &str, body: impl FnOnce(&mut Self) -> T) -> T {
        let start = Instant::now();
        let out = body(self);
        let elapsed = start.elapsed().as_nanos();
        let span = self.spans.entry(name.to_string()).or_default();
        span.count += 1;
        span.total_nanos += elapsed;
        out
    }

    /// Fold another meter into this one: counters add, maxima take the
    /// max, spans add.
    pub fn absorb(&mut self, other: &WorkMeter) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.maxima {
            self.record_max(k, *v);
        }
        for (k, s) in &other.spans {
            let span = self.spans.entry(k.clone()).or_default();
            span.count += s.count;
            span.total_nanos += s.total_nanos;
        }
    }

    /// Deterministic snapshot: counters and maxima only, no timings.
    /// For a fixed seed this is byte-stable across runs.
    pub fn snapshot_counters(&self) -> Json {
        let mut counters = Json::object();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        let mut maxima = Json::object();
        for (k, v) in &self.maxima {
            maxima.set(k, *v);
        }
        let mut obj = Json::object();
        obj.set("counters", counters);
        obj.set("maxima", maxima);
        obj
    }

    /// Full snapshot: counters, maxima, and wall-clock span timings.
    /// Timings vary run to run, so this form is opt-in (the CLI gates it
    /// behind `SPARSIMATCH_METRICS_TIMINGS=1` to keep files byte-stable).
    pub fn snapshot_full(&self) -> Json {
        let mut obj = self.snapshot_counters();
        let mut spans = Json::object();
        for (k, s) in &self.spans {
            let mut span = Json::object();
            span.set("count", s.count);
            span.set("total_nanos", s.total_nanos as u64);
            spans.set(k, span);
        }
        obj.set("spans", spans);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut m = WorkMeter::new();
        m.incr("a");
        m.add("a", 4);
        m.add("b", u64::MAX);
        m.add("b", 10);
        assert_eq!(m.get("a"), 5);
        assert_eq!(m.get("b"), u64::MAX);
        assert_eq!(m.get("untouched"), 0);
    }

    #[test]
    fn maxima_keep_high_water_mark() {
        let mut m = WorkMeter::new();
        m.record_max("w", 7);
        m.record_max("w", 3);
        assert_eq!(m.get_max("w"), 7);
    }

    #[test]
    fn spans_accumulate() {
        let mut m = WorkMeter::new();
        let out = m.time("stage", |m| {
            m.incr("inner");
            21 * 2
        });
        assert_eq!(out, 42);
        m.time("stage", |_| {});
        let s = m.span_stats("stage");
        assert_eq!(s.count, 2);
        assert_eq!(m.get("inner"), 1);
    }

    #[test]
    fn add_span_folds_external_timings() {
        let mut m = WorkMeter::new();
        m.add_span(keys::STAGE_MARK, 1, 500);
        m.add_span(keys::STAGE_MARK, 2, 250);
        let s = m.span_stats(keys::STAGE_MARK);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_nanos, 750);
        // Folds with `time` spans under the same name.
        m.time(keys::STAGE_MARK, |_| {});
        assert_eq!(m.span_stats(keys::STAGE_MARK).count, 4);
    }

    #[test]
    fn absorb_merges() {
        let mut a = WorkMeter::new();
        a.add("x", 1);
        a.record_max("m", 5);
        let mut b = WorkMeter::new();
        b.add("x", 2);
        b.add("y", 3);
        b.record_max("m", 4);
        b.time("t", |_| {});
        a.absorb(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
        assert_eq!(a.get_max("m"), 5);
        assert_eq!(a.span_stats("t").count, 1);
    }

    #[test]
    fn counter_snapshot_is_deterministic_and_ordered() {
        let mut m = WorkMeter::new();
        m.add("zeta", 1);
        m.add("alpha", 2);
        m.record_max("peak", 9);
        let text = m.snapshot_counters().to_pretty();
        assert_eq!(text, m.clone().snapshot_counters().to_pretty());
        // BTreeMap order: alpha before zeta regardless of insertion order.
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        assert!(!text.contains("spans"));
        assert!(m.snapshot_full().to_pretty().contains("spans"));
    }
}
