//! Hostile-JSON property suite (ISSUE 6 satellite): the parser is the
//! serve daemon's wire format, so arbitrary bytes must never panic, every
//! document our own serializer emits must round-trip exactly, and the
//! three hardening rules (depth cap, control characters, duplicate keys)
//! must hold under generated input, not just the hand-written regressions.

use proptest::prelude::*;
use sparsimatch_obs::{Json, ParseErrorKind, MAX_PARSE_DEPTH};

/// A generated JSON value whose serializer output is parseable: object
/// keys are made unique per level (the parser now rejects duplicates).
fn arb_json() -> impl Strategy<Value = Json> {
    // Bounded-depth recursive construction driven by a byte script: each
    // byte picks a node kind, containers consume following bytes.
    proptest::collection::vec(any::<u8>(), 1..160).prop_map(|script| {
        fn build(script: &[u8], at: &mut usize, depth: usize) -> Json {
            let b = script.get(*at).copied().unwrap_or(0);
            *at += 1;
            if depth >= 6 {
                return Json::UInt(u64::from(b));
            }
            match b % 8 {
                0 => Json::Null,
                1 => Json::Bool(b >= 128),
                2 => Json::Int(-(i64::from(b))),
                3 => Json::UInt(u64::from(b) << 32),
                4 => Json::Float(f64::from(b) / 3.0),
                5 => Json::Str(format!("s{:02x}\"\\\n\u{1}é", b)),
                6 => {
                    let len = usize::from(b % 5);
                    Json::Array((0..len).map(|_| build(script, at, depth + 1)).collect())
                }
                _ => {
                    let len = usize::from(b % 5);
                    Json::Object(
                        (0..len)
                            .map(|i| (format!("k{i}"), build(script, at, depth + 1)))
                            .collect(),
                    )
                }
            }
        }
        build(&script, &mut 0, 0)
    })
}

/// Raw hostile byte soup biased toward JSON structure: brackets, quotes,
/// backslashes, control bytes, digits.
fn arb_hostile_bytes() -> impl Strategy<Value = Vec<u8>> {
    let byte = (0u8..16).prop_map(|p| match p {
        0 => b'[',
        1 => b']',
        2 => b'{',
        3 => b'}',
        4 => b'"',
        5 => b'\\',
        6 => b',',
        7 => b':',
        8 => b'u',
        9 => b'0',
        10 => b'9',
        11 => b'-',
        12 => b'.',
        13 => 0x01,
        14 => 0xff,
        _ => b' ',
    });
    proptest::collection::vec(byte, 0..256)
}

/// A lowercase ASCII string with length in `min..=max` (the vendored
/// proptest stand-in has no regex string strategies).
fn arb_lowercase(min: usize, max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, min..max + 1)
        .prop_map(|v| v.into_iter().map(|b| char::from(b + b'a')).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → parse is the identity, in both output formats.
    #[test]
    fn serialize_parse_round_trip(v in arb_json()) {
        for text in [v.to_pretty(), v.to_compact()] {
            let back = Json::parse(&text);
            prop_assert_eq!(back.as_ref(), Ok(&v), "{}", text);
        }
    }

    /// Arbitrary (lossily-UTF-8'd) hostile bytes never panic the parser;
    /// they either parse or return a typed error.
    #[test]
    fn hostile_bytes_never_panic(bytes in arb_hostile_bytes()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// Every truncation prefix of a valid document either parses or
    /// errors cleanly — truncated wire input must never panic.
    #[test]
    fn truncated_input_never_panics(v in arb_json(), cut in any::<u16>()) {
        let text = v.to_compact();
        let cut = usize::from(cut) % (text.len() + 1);
        // Cut at a char boundary (truncated *bytes* are not a &str).
        let mut end = cut;
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        let _ = Json::parse(&text[..end]);
    }

    /// Nesting beyond the cap is always TooDeep, never a crash, for any
    /// mix of array/object nesting.
    #[test]
    fn deep_nesting_is_rejected(extra in 1usize..64, pattern in any::<u64>()) {
        let depth = MAX_PARSE_DEPTH + extra;
        let mut text = String::new();
        for i in 0..depth {
            if (pattern >> (i % 64)) & 1 == 0 {
                text.push('[');
            } else {
                text.push_str("{\"k\":");
            }
        }
        let err = Json::parse(&text).unwrap_err();
        prop_assert_eq!(err.kind, ParseErrorKind::TooDeep);
    }

    /// A raw control byte anywhere inside any generated string literal is
    /// rejected with the ControlChar kind.
    #[test]
    fn control_bytes_in_strings_are_rejected(prefix in arb_lowercase(0, 8), b in 0u8..0x20) {
        let text = format!("\"{}{}x\"", prefix, b as char);
        let err = Json::parse(&text).unwrap_err();
        prop_assert_eq!(err.kind, ParseErrorKind::ControlChar);
        prop_assert_eq!(err.offset, 1 + prefix.len());
    }

    /// Objects with a repeated key are rejected wherever the object sits.
    #[test]
    fn duplicate_keys_are_rejected(key in arb_lowercase(1, 6), wrap in any::<bool>()) {
        let obj = format!("{{\"{key}\":1,\"{key}\":2}}");
        let text = if wrap { format!("[{{\"outer\":{obj}}}]") } else { obj };
        let err = Json::parse(&text).unwrap_err();
        prop_assert_eq!(err.kind, ParseErrorKind::DuplicateKey);
    }
}
