#![warn(missing_docs)]

//! Matching algorithms for the `sparsimatch` workspace.
//!
//! * [`matching::Matching`] — the shared matching representation (mate
//!   array) with validity / maximality / approximation audits.
//! * [`greedy`] — greedy and randomized-greedy *maximal* matching (the
//!   classic 2-approximation).
//! * [`hopcroft_karp`] — exact maximum matching on bipartite graphs.
//! * [`blossom`] — Edmonds' blossom algorithm: exact maximum matching on
//!   general graphs; the ground truth for every experiment.
//! * [`bounded_aug`] — `(1 + 1/k)`-approximate maximum matching on general
//!   graphs by eliminating augmenting paths of length ≤ 2k−1: the
//!   "standard (1+ε)-approximate MCM algorithm" the paper runs on its
//!   sparsifier (substituted for Micali–Vazirani; see DESIGN.md §4).
//! * [`assadi_solomon`] — the ICALP'19 sublinear-probe maximal matching,
//!   the baseline Theorem 3.1 improves upon.

pub mod assadi_solomon;
pub mod blossom;
pub mod bounded_aug;
pub mod greedy;
pub mod hopcroft_karp;
pub mod karp_sipser;
pub mod matching;
pub mod verify;

pub use matching::Matching;
