//! Edmonds' blossom algorithm: exact maximum matching in general graphs.
//!
//! This is the workspace's ground truth — every sparsifier approximation
//! claim is audited against it. The implementation is the classic
//! array-based formulation (alternating BFS tree with blossom contraction
//! by base relabeling), O(n·m) per augmentation in the worst case and
//! O(n·m·α) overall, comfortably fast at experiment scales.
//!
//! The search supports a **depth cap**: expansion stops at alternating
//! distance `cap` from the root, so a search that fails with cap `2k−1`
//! certifies there is no augmenting path of length ≤ 2k−1 from that root
//! (blossom contraction can only shorten alternating reachability, and the
//! cap is applied to the contracted distance, an underestimate of the true
//! path length). This is exactly the primitive the `(1+1/k)`-approximation
//! of [`crate::bounded_aug`] needs.

use crate::matching::Matching;
use sparsimatch_graph::bitset::BitSet;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;

/// Reusable buffers for repeated augmenting-path searches on one graph.
///
/// The per-vertex boolean overlays (even-level marks, blossom
/// membership, LCA marks, retired trees) are bit-packed [`BitSet`]s:
/// 1 bit per vertex instead of the 1 byte of a `Vec<bool>`, and
/// whole-overlay clears become word fills. Reuse semantics are
/// unchanged — a warm [`BlossomSearcher::reset_from`] stays
/// allocation-free.
pub struct BlossomSearcher {
    mate: Vec<u32>,
    parent: Vec<u32>,
    base: Vec<u32>,
    even: BitSet,
    in_blossom: BitSet,
    lca_mark: BitSet,
    depth: Vec<u32>,
    /// Tree root of each even vertex (multi-source search only).
    root: Vec<u32>,
    /// Trees whose root was consumed by an augmentation in the current
    /// forest phase (multi-source search only), keyed by root vertex.
    retired: BitSet,
    queue: VecDeque<u32>,
    /// Half-edges examined across all searches — the machine-independent
    /// work measure used by the dynamic scheme's budget accounting.
    work: u64,
}

impl BlossomSearcher {
    /// A searcher starting from the given matching.
    pub fn new(matching: &Matching) -> Self {
        let mut s = BlossomSearcher {
            mate: Vec::new(),
            parent: Vec::new(),
            base: Vec::new(),
            even: BitSet::new(),
            in_blossom: BitSet::new(),
            lca_mark: BitSet::new(),
            depth: Vec::new(),
            root: Vec::new(),
            retired: BitSet::new(),
            queue: VecDeque::new(),
            work: 0,
        };
        s.reset_from(matching);
        s
    }

    /// Re-initialize from `matching`, reusing every buffer's capacity.
    /// Equivalent to `*self = BlossomSearcher::new(matching)` but
    /// allocation-free once the buffers have grown to the vertex count —
    /// `work` restarts at zero, so searches on a recycled searcher report
    /// exactly the counts a fresh one would.
    pub fn reset_from(&mut self, matching: &Matching) {
        let n = matching.num_vertices();
        self.mate.clear();
        self.mate.resize(n, NONE);
        for (u, v) in matching.pairs() {
            self.mate[u.index()] = v.0;
            self.mate[v.index()] = u.0;
        }
        self.parent.clear();
        self.parent.resize(n, NONE);
        self.base.clear();
        self.base.extend(0..n as u32);
        self.even.clear_and_resize(n);
        self.in_blossom.clear_and_resize(n);
        self.lca_mark.clear_and_resize(n);
        self.depth.clear();
        self.depth.resize(n, 0);
        self.root.clear();
        self.root.resize(n, NONE);
        self.retired.clear_and_resize(n);
        self.queue.clear();
        self.work = 0;
    }

    /// Half-edges examined so far (monotone across searches).
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Heap bytes of buffer capacity currently held. Feeds the scratch
    /// arenas' high-water accounting; an estimate (element sizes, not
    /// allocator overhead).
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.mate.capacity()
            + self.parent.capacity()
            + self.base.capacity()
            + self.depth.capacity()
            + self.root.capacity()
            + self.queue.capacity())
            * size_of::<u32>()
            + self.even.capacity_bytes()
            + self.in_blossom.capacity_bytes()
            + self.lca_mark.capacity_bytes()
            + self.retired.capacity_bytes()
    }

    /// Extract the current matching.
    pub fn into_matching(self) -> Matching {
        let mut m = Matching::new(self.mate.len());
        self.write_matching_into(&mut m);
        m
    }

    /// Write the current matching into a caller-owned `Matching`,
    /// resetting it to this searcher's vertex count first. The
    /// non-consuming [`BlossomSearcher::into_matching`]: allocation-free
    /// once `out` has capacity, and produces the identical matching.
    pub fn write_matching_into(&self, out: &mut Matching) {
        out.reset(self.mate.len());
        for (u, &v) in self.mate.iter().enumerate() {
            if v != NONE && (u as u32) < v {
                out.add_pair(VertexId::new(u), VertexId(v));
            }
        }
    }

    /// Current matching size.
    pub fn matching_size(&self) -> usize {
        self.mate.iter().filter(|&&m| m != NONE).count() / 2
    }

    #[inline]
    fn is_free(&self, v: u32) -> bool {
        self.mate[v as usize] == NONE
    }

    /// Whether `v` is free in the searcher's current matching.
    #[inline]
    pub fn is_free_vertex(&self, v: VertexId) -> bool {
        self.is_free(v.0)
    }

    /// Search for an augmenting path from `root` whose *contracted*
    /// alternating length is at most `cap` edges; flip it if found.
    ///
    /// `cap = u32::MAX` gives the unrestricted exact search.
    pub fn try_augment(&mut self, g: &CsrGraph, root: VertexId, cap: u32) -> bool {
        let n = g.num_vertices();
        debug_assert!(self.is_free(root.0));
        // Reset per-search state.
        self.parent.iter_mut().for_each(|p| *p = NONE);
        self.even.clear_all();
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i as u32;
        }
        self.queue.clear();
        self.even.set(root.index());
        self.depth[root.index()] = 0;
        self.queue.push_back(root.0);

        while let Some(v) = self.queue.pop_front() {
            let dv = self.depth[v as usize];
            if dv + 1 > cap {
                continue; // cannot extend by even one edge within the cap
            }
            let deg = g.degree(VertexId(v));
            self.work += deg as u64;
            for i in 0..deg {
                let to = g.neighbor(VertexId(v), i).0;
                if self.base[v as usize] == self.base[to as usize] || self.mate[v as usize] == to {
                    continue;
                }
                let to_is_even = to == root.0
                    || (self.mate[to as usize] != NONE
                        && self.parent[self.mate[to as usize] as usize] != NONE);
                if to_is_even {
                    // Even-even edge closes an odd cycle: contract blossom.
                    let cur_base = self.lowest_common_ancestor(v, to);
                    self.in_blossom.clear_all();
                    self.mark_path(v, cur_base, to);
                    self.mark_path(to, cur_base, v);
                    let base_depth = self.depth[cur_base as usize];
                    for i in 0..n as u32 {
                        if self.in_blossom.get(self.base[i as usize] as usize) {
                            self.base[i as usize] = cur_base;
                            if !self.even.get(i as usize) {
                                self.even.set(i as usize);
                                // Conservative depth: contraction shortens
                                // paths, so inherit the base's depth.
                                self.depth[i as usize] = base_depth;
                                self.queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to as usize] == NONE {
                    self.parent[to as usize] = v;
                    if self.mate[to as usize] == NONE {
                        self.augment_to(to);
                        return true;
                    }
                    let w = self.mate[to as usize];
                    self.even.set(w as usize);
                    self.depth[w as usize] = dv + 2;
                    self.queue.push_back(w);
                }
            }
        }
        false
    }

    /// Multi-source (forest) variant: grow alternating trees from *all*
    /// free vertices simultaneously, with per-tree depth cap `cap`, and
    /// flip the first augmenting path found. Equivalent to
    /// `augment_phase` stopped after one flip; kept for callers (the
    /// dynamic scheme's budget loop) that meter work one augmentation at
    /// a time.
    pub fn try_augment_any(&mut self, g: &CsrGraph, cap: u32) -> bool {
        self.augment_phase_limited(g, cap, 1) > 0
    }

    /// One Hopcroft–Karp-shaped forest *phase*: grow alternating trees
    /// from all free vertices, and whenever a cross-tree even–even edge
    /// closes an augmenting path, flip it, retire the two trees it
    /// consumed, and keep searching the surviving forest. One call costs
    /// O(m·α) and flips a set of vertex-disjoint augmenting paths —
    /// returning how many — so reaching a path-free state costs
    /// O(phases·m) instead of O(augmentations·m). (Retiring a tree can
    /// strand odd vertices it had claimed, so a phase is not guaranteed
    /// maximal; callers re-run until a phase returns 0.)
    pub fn augment_phase(&mut self, g: &CsrGraph, cap: u32) -> usize {
        self.augment_phase_limited(g, cap, usize::MAX)
    }

    fn augment_phase_limited(&mut self, g: &CsrGraph, cap: u32, max_flips: usize) -> usize {
        let n = g.num_vertices();
        self.parent.iter_mut().for_each(|p| *p = NONE);
        self.even.clear_all();
        self.root.iter_mut().for_each(|r| *r = NONE);
        self.retired.clear_all();
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i as u32;
        }
        self.queue.clear();
        for v in 0..n as u32 {
            if self.is_free(v) && g.degree(VertexId(v)) > 0 {
                self.even.set(v as usize);
                self.root[v as usize] = v;
                self.depth[v as usize] = 0;
                self.queue.push_back(v);
            }
        }
        let mut flipped = 0usize;
        'scan: while let Some(v) = self.queue.pop_front() {
            let dv = self.depth[v as usize];
            if dv + 1 > cap {
                continue;
            }
            let rv = self.root[v as usize];
            if self.retired.get(rv as usize) {
                continue;
            }
            let deg = g.degree(VertexId(v));
            self.work += deg as u64;
            for i in 0..deg {
                let to = g.neighbor(VertexId(v), i).0;
                if self.base[v as usize] == self.base[to as usize] || self.mate[v as usize] == to {
                    continue;
                }
                if self.even.get(to as usize) {
                    let rto = self.root[to as usize];
                    if rto == rv {
                        // Same tree: odd cycle, contract the blossom.
                        let cur_base = self.lowest_common_ancestor(v, to);
                        self.in_blossom.clear_all();
                        self.mark_path(v, cur_base, to);
                        self.mark_path(to, cur_base, v);
                        let base_depth = self.depth[cur_base as usize];
                        for i in 0..n as u32 {
                            if self.in_blossom.get(self.base[i as usize] as usize) {
                                self.base[i as usize] = cur_base;
                                if !self.even.get(i as usize) {
                                    self.even.set(i as usize);
                                    self.root[i as usize] = rv;
                                    self.depth[i as usize] = base_depth;
                                    self.queue.push_back(i);
                                }
                            }
                        }
                    } else if !self.retired.get(rto as usize) {
                        // Cross-tree even–even edge between live trees:
                        // augmenting path root(v) ⇝ v — to ⇝ root(to).
                        // Flip both halves and retire both trees; their
                        // parent structure is now stale, so later pops
                        // and edges into them are skipped above.
                        self.flip_to_free(v);
                        self.flip_to_free(to);
                        self.mate[v as usize] = to;
                        self.mate[to as usize] = v;
                        self.retired.set(rv as usize);
                        self.retired.set(rto as usize);
                        flipped += 1;
                        if flipped >= max_flips {
                            return flipped;
                        }
                        // v's own tree is retired: stop expanding it.
                        continue 'scan;
                    }
                } else if self.parent[to as usize] == NONE && self.mate[to as usize] != NONE {
                    self.parent[to as usize] = v;
                    let w = self.mate[to as usize];
                    if !self.even.get(w as usize) {
                        self.even.set(w as usize);
                        self.root[w as usize] = rv;
                        self.depth[w as usize] = dv + 2;
                        self.queue.push_back(w);
                    }
                }
            }
        }
        flipped
    }

    /// Flip the alternating tree path from even vertex `x` up to its root,
    /// leaving `x` temporarily free (its caller re-mates it across the
    /// cross edge). Walks the same parent structure as [`Self::augment_to`],
    /// so it is blossom-safe.
    fn flip_to_free(&mut self, x: u32) {
        let y = self.mate[x as usize];
        self.mate[x as usize] = NONE;
        if y != NONE {
            self.mate[y as usize] = NONE;
            self.augment_to(y);
        }
    }

    /// Walk `v` up to the blossom base `b`, marking blossom members and
    /// installing cross parent-pointers so odd vertices become traversable.
    fn mark_path(&mut self, mut v: u32, b: u32, mut child: u32) {
        while self.base[v as usize] != b {
            self.in_blossom.set(self.base[v as usize] as usize);
            let mv = self.mate[v as usize];
            self.in_blossom.set(self.base[mv as usize] as usize);
            self.parent[v as usize] = child;
            child = mv;
            v = self.parent[mv as usize];
        }
    }

    fn lowest_common_ancestor(&mut self, a: u32, b: u32) -> u32 {
        self.lca_mark.clear_all();
        let mut a = self.base[a as usize];
        loop {
            self.lca_mark.set(a as usize);
            if self.mate[a as usize] == NONE {
                break;
            }
            a = self.base[self.parent[self.mate[a as usize] as usize] as usize];
        }
        let mut b = self.base[b as usize];
        loop {
            if self.lca_mark.get(b as usize) {
                return b;
            }
            b = self.base[self.parent[self.mate[b as usize] as usize] as usize];
        }
    }

    /// Flip the alternating path ending at the free vertex `v` (walking the
    /// parent pointers back to the root).
    fn augment_to(&mut self, mut v: u32) {
        while v != NONE {
            let pv = self.parent[v as usize];
            let ppv = self.mate[pv as usize];
            self.mate[v as usize] = pv;
            self.mate[pv as usize] = v;
            v = ppv;
        }
    }
}

/// Exact maximum cardinality matching via Edmonds' algorithm, initialized
/// with a greedy maximal matching.
///
/// ```
/// use sparsimatch_graph::generators::cycle;
/// use sparsimatch_matching::blossom::maximum_matching;
///
/// // Odd cycles need blossom handling: MCM(C9) = 4.
/// let m = maximum_matching(&cycle(9));
/// assert_eq!(m.len(), 4);
/// ```
pub fn maximum_matching(g: &CsrGraph) -> Matching {
    let init = crate::greedy::greedy_maximal_matching(g);
    maximum_matching_from(g, init)
}

/// Exact maximum matching, growing a caller-supplied initial matching.
pub fn maximum_matching_from(g: &CsrGraph, init: Matching) -> Matching {
    let n = g.num_vertices();
    let mut searcher = BlossomSearcher::new(&init);
    // Classic fact: if no augmenting path starts at a free vertex v, later
    // augmentations cannot create one, so a single pass over roots suffices.
    for v in 0..n as u32 {
        if searcher.is_free(v) && g.degree(VertexId(v)) > 0 {
            searcher.try_augment(g, VertexId(v), u32::MAX);
        }
    }
    let m = searcher.into_matching();
    debug_assert!(m.is_valid_for(g));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{
        clique, complete_bipartite, cycle, gnp, path, star, two_cliques_bridge,
    };

    #[test]
    fn path_mcm() {
        assert_eq!(maximum_matching(&path(7)).len(), 3);
        assert_eq!(maximum_matching(&path(8)).len(), 4);
    }

    #[test]
    fn cycles() {
        assert_eq!(maximum_matching(&cycle(6)).len(), 3);
        assert_eq!(maximum_matching(&cycle(7)).len(), 3, "odd cycle");
    }

    #[test]
    fn cliques() {
        assert_eq!(maximum_matching(&clique(6)).len(), 3);
        assert_eq!(maximum_matching(&clique(7)).len(), 3);
    }

    #[test]
    fn star_is_one() {
        assert_eq!(maximum_matching(&star(10)).len(), 1);
    }

    #[test]
    fn bipartite_agrees_with_hopcroft_karp() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..15 {
            let g = sparsimatch_graph::generators::bipartite_gnp(15, 18, 0.15, &mut rng);
            let hk = crate::hopcroft_karp::hopcroft_karp_auto(&g).expect("bipartite");
            let bl = maximum_matching(&g);
            assert_eq!(bl.len(), hk.len());
            assert!(bl.is_valid_for(&g));
        }
    }

    #[test]
    fn petersen_graph() {
        // Petersen graph has a perfect matching (size 5).
        let g = from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // outer cycle
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5), // inner pentagram
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9), // spokes
            ],
        );
        assert_eq!(maximum_matching(&g).len(), 5);
    }

    #[test]
    fn blossom_requiring_instance() {
        // Two triangles joined by a path: needs blossom handling.
        // Triangle A: 0-1-2, triangle B: 4-5-6, bridge 2-3, 3-4.
        let g = from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
        );
        assert_eq!(maximum_matching(&g).len(), 3);
    }

    #[test]
    fn bridge_instance_forced_edge() {
        let (g, (a, b)) = two_cliques_bridge(7);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 7);
        assert_eq!(m.mate(a), Some(b), "perfect matching must use the bridge");
    }

    #[test]
    fn complete_bipartite_mcm() {
        assert_eq!(maximum_matching(&complete_bipartite(4, 9)).len(), 4);
    }

    #[test]
    fn random_graphs_vs_flow_based_count() {
        // Cross-check sizes against an independent brute-force (exponential)
        // on tiny graphs.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let g = gnp(11, 0.3, &mut rng);
            let fast = maximum_matching(&g).len();
            let brute = brute_force_mcm(&g);
            assert_eq!(fast, brute);
        }
    }

    fn brute_force_mcm(g: &CsrGraph) -> usize {
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        fn rec(edges: &[(u32, u32)], used: &mut u64, i: usize) -> usize {
            if i == edges.len() {
                return 0;
            }
            let skip = rec(edges, used, i + 1);
            let (u, v) = edges[i];
            let mask = (1u64 << u) | (1u64 << v);
            if *used & mask == 0 {
                *used |= mask;
                let take = 1 + rec(edges, used, i + 1);
                *used &= !mask;
                skip.max(take)
            } else {
                skip
            }
        }
        rec(&edges, &mut 0u64, 0)
    }

    #[test]
    fn maximum_matching_from_preserves_validity() {
        let g = cycle(9);
        let init = Matching::from_pairs(9, [(VertexId(0), VertexId(1))]);
        let m = maximum_matching_from(&g, init);
        assert_eq!(m.len(), 4);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn capped_search_finds_short_paths_only() {
        // Path of 5 edges: 0-1-2-3-4-5 with matching {1-2, 3-4}: the only
        // augmenting path is the full length-5 path.
        let g = path(6);
        let m = Matching::from_pairs(6, [(VertexId(1), VertexId(2)), (VertexId(3), VertexId(4))]);
        let mut s = BlossomSearcher::new(&m);
        assert!(!s.try_augment(&g, VertexId(0), 3), "no path of length ≤ 3");
        assert!(s.try_augment(&g, VertexId(0), 5), "length-5 path exists");
        assert_eq!(s.matching_size(), 3);
    }

    #[test]
    fn reset_from_equals_fresh_searcher() {
        let g = cycle(9);
        let init = crate::greedy::greedy_maximal_matching(&g);
        let mut recycled = BlossomSearcher::new(&Matching::new(3));
        // Dirty the recycled searcher on an unrelated graph first.
        recycled.try_augment_any(&path(3), u32::MAX);
        recycled.reset_from(&init);
        let mut fresh = BlossomSearcher::new(&init);
        for v in 0..9u32 {
            let v = VertexId(v);
            if fresh.is_free_vertex(v) {
                assert_eq!(
                    fresh.try_augment(&g, v, u32::MAX),
                    recycled.try_augment(&g, v, u32::MAX),
                    "vertex {}",
                    v.0
                );
            }
        }
        assert_eq!(fresh.work(), recycled.work(), "work counters must agree");
        let mut out = Matching::new(0);
        recycled.write_matching_into(&mut out);
        assert_eq!(fresh.into_matching(), out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn augment_phase_flips_disjoint_paths_in_one_pass() {
        // Five disjoint edges, empty matching: one forest phase must flip
        // all five (the whole point of phases vs one flip per O(m) scan).
        let g = from_edges(10, [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]);
        let mut s = BlossomSearcher::new(&Matching::new(10));
        assert_eq!(s.augment_phase(&g, 1), 5);
        assert_eq!(s.matching_size(), 5);
        assert_eq!(s.augment_phase(&g, u32::MAX), 0, "already maximum");
        // try_augment_any stays the single-flip variant.
        let mut one = BlossomSearcher::new(&Matching::new(10));
        assert!(one.try_augment_any(&g, 1));
        assert_eq!(one.matching_size(), 1);
    }

    #[test]
    fn phased_elimination_reaches_maximum_on_dense_unions() {
        use sparsimatch_graph::generators::{clique_union, CliqueUnionConfig};
        let mut rng = StdRng::seed_from_u64(77);
        let g = clique_union(
            CliqueUnionConfig {
                n: 240,
                diversity: 2,
                clique_size: 16,
            },
            &mut rng,
        );
        let exact = maximum_matching(&g).len();
        let mut m = crate::greedy::greedy_maximal_matching(&g);
        crate::bounded_aug::eliminate_augmenting_paths_up_to(&g, &mut m, 17);
        assert!(m.is_valid_for(&g));
        // eps_stage = 0.12 ⇒ k = 9: |m| ≥ 9/10 · MCM.
        assert!(m.len() * 10 >= exact * 9, "{} vs {exact}", m.len());
    }

    #[test]
    fn capped_search_through_blossom() {
        // Odd cycle C5 with matching {1-2, 3-4}: augmenting from 0 requires
        // going around; the blossom machinery must still respect the cap
        // conservatively (find the path with a generous cap).
        let g = cycle(5);
        let m = Matching::from_pairs(5, [(VertexId(1), VertexId(2)), (VertexId(3), VertexId(4))]);
        let mut s = BlossomSearcher::new(&m);
        // 0 is free but both neighbors are matched; no augmenting path at
        // all (M is maximum in C5).
        assert!(!s.try_augment(&g, VertexId(0), u32::MAX));
    }
}
