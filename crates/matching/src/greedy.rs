//! Greedy maximal matching — the classic linear-time 2-approximation.
//!
//! Scanning every edge once and keeping it whenever both endpoints are
//! free yields a maximal matching, hence `|M| ≥ |MCM|/2`. This is both a
//! baseline (the naive `O(m)` algorithm the paper's sublinear results beat
//! on dense graphs) and the initializer for the bounded-augmentation
//! approximation.

use crate::matching::Matching;
use rand::seq::SliceRandom;
use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::EdgeId;
use std::sync::atomic::{AtomicU32, Ordering};

/// Greedy maximal matching in edge-id order. O(m).
pub fn greedy_maximal_matching(g: &CsrGraph) -> Matching {
    let mut m = Matching::new(g.num_vertices());
    greedy_maximal_matching_into(g, &mut m);
    m
}

/// [`greedy_maximal_matching`] into a caller-owned matching: `out` is
/// reset to `g`'s vertex count (reusing its capacity) and filled with the
/// same edge-id-order scan. The scratch-reuse path of the pipeline's
/// match stage — allocation-free once `out` has capacity.
pub fn greedy_maximal_matching_into(g: &CsrGraph, out: &mut Matching) {
    out.reset(g.num_vertices());
    for (_, u, v) in g.edges() {
        out.add_pair(u, v); // no-op when an endpoint is taken
    }
    debug_assert!(out.is_maximal_in(g));
}

/// Below this many edges the parallel greedy takes the sequential path.
const PARALLEL_GREEDY_CUTOFF: usize = 1 << 14;

/// Once the alive edge set shrinks below this, finish sequentially — the
/// local-minima rounds stop paying for their passes.
const SEQUENTIAL_FINISH: usize = 4096;

/// Round cap: on adversarial inputs (long induced paths) local-minima
/// rounds can need Θ(m) iterations; past this many rounds the remaining
/// edges are finished sequentially instead. Both fallback triggers depend
/// only on the (deterministic) round outcomes, never on the thread count.
const MAX_ROUNDS: usize = 64;

/// Deterministic parallel greedy maximal matching.
///
/// Computes exactly the same matching as [`greedy_maximal_matching`] — the
/// lexicographically-first maximal matching in edge-id order — for every
/// thread count, via rounds of local minima: an alive edge is claimed when
/// it is the minimum-id alive edge at *both* endpoints. Per-vertex minima
/// are folded with an atomic `fetch_min`, which is commutative, so the
/// round outcome is independent of scheduling. Rounds that stop making
/// fast progress fall back to the sequential scan over the surviving
/// edges, which preserves the output exactly (an edge skipped because an
/// endpoint got matched is an edge the sequential scan would skip too).
pub fn greedy_maximal_matching_parallel(g: &CsrGraph, threads: usize) -> Matching {
    let threads = threads.max(1);
    let m_edges = g.num_edges();
    if threads == 1 || m_edges < PARALLEL_GREEDY_CUTOFF {
        return greedy_maximal_matching(g);
    }
    let n = g.num_vertices();
    let mut matching = Matching::new(n);
    let mut alive: Vec<u32> = (0..m_edges as u32).collect();
    let cand: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let chunk_for = |len: usize| len.div_ceil(threads).max(1);

    let mut rounds = 0usize;
    while !alive.is_empty() {
        if alive.len() <= SEQUENTIAL_FINISH || rounds >= MAX_ROUNDS {
            for &e in &alive {
                let (u, v) = g.edge_endpoints(EdgeId(e));
                matching.add_pair(u, v);
            }
            break;
        }
        rounds += 1;
        let chunk = chunk_for(alive.len());
        // Pass 1: reset candidates at live endpoints (plain stores of the
        // same value are race-free), then fold per-vertex minima.
        std::thread::scope(|s| {
            for ch in alive.chunks(chunk) {
                let cand = &cand;
                s.spawn(move || {
                    for &e in ch {
                        let (u, v) = g.edge_endpoints(EdgeId(e));
                        cand[u.index()].store(u32::MAX, Ordering::Relaxed);
                        cand[v.index()].store(u32::MAX, Ordering::Relaxed);
                    }
                });
            }
        });
        std::thread::scope(|s| {
            for ch in alive.chunks(chunk) {
                let cand = &cand;
                s.spawn(move || {
                    for &e in ch {
                        let (u, v) = g.edge_endpoints(EdgeId(e));
                        cand[u.index()].fetch_min(e, Ordering::Relaxed);
                        cand[v.index()].fetch_min(e, Ordering::Relaxed);
                    }
                });
            }
        });
        // Pass 2: collect winners (min at both endpoints). Winners are
        // vertex-disjoint, so applying them in any order is safe; chunk
        // order keeps it deterministic anyway.
        let winners: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = alive
                .chunks(chunk)
                .map(|ch| {
                    let cand = &cand;
                    s.spawn(move || {
                        ch.iter()
                            .copied()
                            .filter(|&e| {
                                let (u, v) = g.edge_endpoints(EdgeId(e));
                                cand[u.index()].load(Ordering::Relaxed) == e
                                    && cand[v.index()].load(Ordering::Relaxed) == e
                            })
                            .collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut won = 0usize;
        for e in winners.into_iter().flatten() {
            let (u, v) = g.edge_endpoints(EdgeId(e));
            let added = matching.add_pair(u, v);
            debug_assert!(added, "round winners must be vertex-disjoint");
            won += 1;
        }
        debug_assert!(won > 0, "the min alive edge always wins its round");
        // Pass 3: drop edges with a matched endpoint, preserving order.
        let survivors: Vec<Vec<u32>> = std::thread::scope(|s| {
            let matching = &matching;
            let handles: Vec<_> = alive
                .chunks(chunk)
                .map(|ch| {
                    s.spawn(move || {
                        ch.iter()
                            .copied()
                            .filter(|&e| {
                                let (u, v) = g.edge_endpoints(EdgeId(e));
                                !matching.is_matched(u) && !matching.is_matched(v)
                            })
                            .collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        alive = survivors.into_iter().flatten().collect();
        // Slow convergence (e.g. long paths): hand the tail to the
        // sequential scan next iteration.
        if won * 16 < alive.len() {
            rounds = MAX_ROUNDS;
        }
    }
    debug_assert!(matching.is_maximal_in(g));
    matching
}

/// Greedy maximal matching over a uniformly random edge order. Still a
/// 2-approximation in the worst case, but typically noticeably larger than
/// the deterministic scan; used as a fairer baseline in experiments.
pub fn randomized_greedy_matching(g: &CsrGraph, rng: &mut impl Rng) -> Matching {
    let mut order: Vec<u32> = (0..g.num_edges() as u32).collect();
    order.shuffle(rng);
    let mut m = Matching::new(g.num_vertices());
    for e in order {
        let (u, v) = g.edge_endpoints(EdgeId(e));
        m.add_pair(u, v);
    }
    debug_assert!(m.is_maximal_in(g));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, cycle, gnp, path};

    #[test]
    fn path_matching() {
        let m = greedy_maximal_matching(&path(6));
        assert!(m.is_valid_for(&path(6)));
        assert!(m.is_maximal_in(&path(6)));
        assert!(m.len() >= 2); // MCM = 3, maximal >= ceil(3/2)
    }

    #[test]
    fn clique_perfect() {
        let g = clique(8);
        let m = greedy_maximal_matching(&g);
        assert_eq!(m.len(), 4, "greedy on a clique is perfect");
    }

    #[test]
    fn odd_cycle() {
        let g = cycle(7);
        let m = greedy_maximal_matching(&g);
        assert!(m.is_maximal_in(&g));
        assert!(m.len() >= 2 && m.len() <= 3);
    }

    #[test]
    fn randomized_is_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(100, 0.05, &mut rng);
        let m = randomized_greedy_matching(&g, &mut rng);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn maximal_is_half_approx() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = gnp(40, 0.1, &mut rng);
            let greedy = greedy_maximal_matching(&g).len();
            let exact = crate::blossom::maximum_matching(&g).len();
            assert!(2 * greedy >= exact, "greedy {greedy} < half of {exact}");
        }
    }

    fn assert_parallel_equals_sequential(g: &CsrGraph, label: &str) {
        let seq = greedy_maximal_matching(g);
        for threads in [2usize, 3, 8] {
            let par = greedy_maximal_matching_parallel(g, threads);
            assert_eq!(seq, par, "{label}: threads = {threads}");
        }
        assert_eq!(seq, greedy_maximal_matching_parallel(g, 1), "{label}: t1");
    }

    #[test]
    fn parallel_equals_sequential_above_cutoff() {
        let mut rng = StdRng::seed_from_u64(7);
        // gnp(400, 0.25): ~20k edges, above PARALLEL_GREEDY_CUTOFF, so the
        // local-minima rounds actually run.
        let g = gnp(400, 0.25, &mut rng);
        assert!(g.num_edges() >= PARALLEL_GREEDY_CUTOFF);
        assert_parallel_equals_sequential(&g, "gnp-dense");
        // Dense single clique: one round matches greedily along edge ids.
        assert_parallel_equals_sequential(&clique(200), "clique");
    }

    #[test]
    fn parallel_survives_pathological_round_depth() {
        // A long path is the worst case for local-minima rounds (the
        // lexicographically-first matching is built nearly one edge per
        // round); the sequential-finish fallback must both terminate and
        // preserve the sequential output.
        assert_parallel_equals_sequential(&path(40_000), "long-path");
        assert_parallel_equals_sequential(&cycle(30_000), "long-cycle");
    }

    #[test]
    fn parallel_handles_small_and_empty_graphs() {
        use sparsimatch_graph::csr::from_edges;
        assert_parallel_equals_sequential(&from_edges(0, []), "empty");
        assert_parallel_equals_sequential(&from_edges(1, []), "singleton");
        assert_parallel_equals_sequential(&path(6), "tiny-path");
        let mut rng = StdRng::seed_from_u64(8);
        assert_parallel_equals_sequential(&gnp(60, 0.2, &mut rng), "small-gnp");
    }

    #[test]
    fn parallel_on_adversarial_families() {
        use sparsimatch_graph::generators::{clique_minus_edge, star};
        // Star: one hub of huge degree — every edge shares the hub, the
        // minimum edge id wins, and everything else dies in round one.
        assert_parallel_equals_sequential(&star(30_000), "star");
        // Lemma 2.13's clique-minus-edge instance.
        assert_parallel_equals_sequential(&clique_minus_edge(250, (0, 249)), "clique-minus-edge");
    }
}
