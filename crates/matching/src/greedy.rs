//! Greedy maximal matching — the classic linear-time 2-approximation.
//!
//! Scanning every edge once and keeping it whenever both endpoints are
//! free yields a maximal matching, hence `|M| ≥ |MCM|/2`. This is both a
//! baseline (the naive `O(m)` algorithm the paper's sublinear results beat
//! on dense graphs) and the initializer for the bounded-augmentation
//! approximation.

use crate::matching::Matching;
use rand::seq::SliceRandom;
use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;

/// Greedy maximal matching in edge-id order. O(m).
pub fn greedy_maximal_matching(g: &CsrGraph) -> Matching {
    let mut m = Matching::new(g.num_vertices());
    for (_, u, v) in g.edges() {
        m.add_pair(u, v); // no-op when an endpoint is taken
    }
    debug_assert!(m.is_maximal_in(g));
    m
}

/// Greedy maximal matching over a uniformly random edge order. Still a
/// 2-approximation in the worst case, but typically noticeably larger than
/// the deterministic scan; used as a fairer baseline in experiments.
pub fn randomized_greedy_matching(g: &CsrGraph, rng: &mut impl Rng) -> Matching {
    let mut order: Vec<u32> = (0..g.num_edges() as u32).collect();
    order.shuffle(rng);
    let mut m = Matching::new(g.num_vertices());
    for e in order {
        let (u, v) = g.edge_endpoints(sparsimatch_graph::ids::EdgeId(e));
        m.add_pair(u, v);
    }
    debug_assert!(m.is_maximal_in(g));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{clique, cycle, gnp, path};

    #[test]
    fn path_matching() {
        let m = greedy_maximal_matching(&path(6));
        assert!(m.is_valid_for(&path(6)));
        assert!(m.is_maximal_in(&path(6)));
        assert!(m.len() >= 2); // MCM = 3, maximal >= ceil(3/2)
    }

    #[test]
    fn clique_perfect() {
        let g = clique(8);
        let m = greedy_maximal_matching(&g);
        assert_eq!(m.len(), 4, "greedy on a clique is perfect");
    }

    #[test]
    fn odd_cycle() {
        let g = cycle(7);
        let m = greedy_maximal_matching(&g);
        assert!(m.is_maximal_in(&g));
        assert!(m.len() >= 2 && m.len() <= 3);
    }

    #[test]
    fn randomized_is_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(100, 0.05, &mut rng);
        let m = randomized_greedy_matching(&g, &mut rng);
        assert!(m.is_valid_for(&g));
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn maximal_is_half_approx() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = gnp(40, 0.1, &mut rng);
            let greedy = greedy_maximal_matching(&g).len();
            let exact = crate::blossom::maximum_matching(&g).len();
            assert!(2 * greedy >= exact, "greedy {greedy} < half of {exact}");
        }
    }
}
