//! The Assadi–Solomon ICALP'19 sublinear maximal matching — the baseline
//! Theorem 3.1 improves upon.
//!
//! [Assadi–Solomon ICALP'19] compute a maximal matching (hence a
//! 2-approximate MCM) with `O(n·β·log n)` adjacency-array probes on graphs
//! of neighborhood independence β. We implement the natural
//! *sample-until-maximal* variant (DESIGN.md §4.3):
//!
//! 1. **Sampling passes.** While progress is made, every unmatched vertex
//!    draws `Θ(β·log n)` uniform incident edges and greedily matches with
//!    the first unmatched neighbor found.
//! 2. **Deterministic cleanup.** Vertices still unmatched scan their full
//!    adjacency array once, matching greedily; this guarantees maximality
//!    outright.
//!
//! On bounded-β graphs the sampling passes leave few vertices whose
//! unmatched-neighbor fraction is small (the crux of the AS19 analysis),
//! so the cleanup touches little of the graph and the measured probe count
//! follows the `O(n·β·log n)` shape — which is what experiment E7 reports
//! via [`CountingOracle`](sparsimatch_graph::CountingOracle).

use crate::matching::Matching;
use rand::Rng;
use sparsimatch_graph::adjacency::AdjacencyOracle;
use sparsimatch_graph::ids::VertexId;

/// Tuning knobs for [`assadi_solomon_maximal`].
#[derive(Clone, Copy, Debug)]
pub struct AsConfig {
    /// The β the sample budget is sized for.
    pub beta: usize,
    /// Samples per vertex per pass = `sample_factor · β · ln n` (the AS19
    /// budget, constant exposed for ablations).
    pub sample_factor: f64,
    /// Maximum sampling passes before cleanup (the analysis needs O(1)
    /// effective passes; this is a hard stop, not a tuning target).
    pub max_passes: usize,
}

impl AsConfig {
    /// Defaults matching the paper's stated complexity.
    pub fn for_beta(beta: usize) -> Self {
        AsConfig {
            beta: beta.max(1),
            sample_factor: 2.0,
            max_passes: 8,
        }
    }
}

/// Compute a maximal matching with the AS19 probe budget. Maximality is
/// guaranteed (by the cleanup phase); the probe count is the experimental
/// quantity.
pub fn assadi_solomon_maximal(
    g: &impl AdjacencyOracle,
    cfg: &AsConfig,
    rng: &mut impl Rng,
) -> Matching {
    let n = g.num_vertices();
    let mut m = Matching::new(n);
    if n == 0 {
        return m;
    }
    let budget =
        ((cfg.sample_factor * cfg.beta as f64 * (n.max(2) as f64).ln()).ceil() as usize).max(1);

    // Phase 1: sampling passes.
    for _pass in 0..cfg.max_passes {
        let mut matched_any = false;
        for v in 0..n {
            let v = VertexId::new(v);
            if m.is_matched(v) {
                continue;
            }
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let tries = budget.min(deg);
            for _ in 0..tries {
                let i = rng.random_range(0..deg);
                let u = g.neighbor(v, i);
                if !m.is_matched(u) && u != v {
                    m.add_pair(v, u);
                    matched_any = true;
                    break;
                }
            }
        }
        if !matched_any {
            break;
        }
    }

    // Phase 2: deterministic cleanup — full scan for remaining free
    // vertices guarantees maximality.
    for v in 0..n {
        let v = VertexId::new(v);
        if m.is_matched(v) {
            continue;
        }
        let deg = g.degree(v);
        for i in 0..deg {
            let u = g.neighbor(v, i);
            if !m.is_matched(u) && u != v {
                m.add_pair(v, u);
                break;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::adjacency::CountingOracle;
    use sparsimatch_graph::generators::{clique, clique_union, gnp, path, CliqueUnionConfig};

    #[test]
    fn always_maximal() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let g = gnp(80, 0.05, &mut rng);
            let m = assadi_solomon_maximal(&g, &AsConfig::for_beta(10), &mut rng);
            assert!(m.is_valid_for(&g));
            assert!(m.is_maximal_in(&g));
        }
    }

    #[test]
    fn clique_perfect_matching() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = clique(50);
        let m = assadi_solomon_maximal(&g, &AsConfig::for_beta(1), &mut rng);
        assert_eq!(m.len(), 25, "maximal matching on a clique is perfect");
    }

    #[test]
    fn sublinear_probes_on_dense_bounded_beta() {
        let mut rng = StdRng::seed_from_u64(33);
        // Dense: n = 400, clique layers of size 100 => m ≈ 2 * 400*99/2 ≈ 40k.
        let g = clique_union(
            CliqueUnionConfig {
                n: 400,
                diversity: 2,
                clique_size: 100,
            },
            &mut rng,
        );
        let m_edges = g.num_edges() as u64;
        let counter = CountingOracle::new(&g);
        let m = assadi_solomon_maximal(&counter, &AsConfig::for_beta(2), &mut rng);
        assert!(m.is_maximal_in(&g));
        let probes = counter.counts().total();
        assert!(
            probes < m_edges,
            "probes {probes} should be below m = {m_edges} on dense input"
        );
    }

    #[test]
    fn path_graph_handled() {
        let mut rng = StdRng::seed_from_u64(34);
        let g = path(31);
        let m = assadi_solomon_maximal(&g, &AsConfig::for_beta(2), &mut rng);
        assert!(m.is_maximal_in(&g));
        assert!(m.len() >= 8); // maximal in P31 is ≥ ceil(15/2)
    }

    #[test]
    fn empty_graph() {
        let mut rng = StdRng::seed_from_u64(35);
        let g = sparsimatch_graph::csr::from_edges(0, []);
        let m = assadi_solomon_maximal(&g, &AsConfig::for_beta(1), &mut rng);
        assert_eq!(m.len(), 0);
    }
}
