//! Independent verification of matching properties.
//!
//! These checkers deliberately share no code with the blossom machinery —
//! they brute-force alternating paths by backtracking DFS — so the test
//! suite can certify the `(1+1/k)` guarantee of
//! [`crate::bounded_aug`] with an implementation that cannot share its
//! bugs. Exponential in the path-length cap, so use on small caps /
//! moderate graphs (which is exactly the testing regime).

use crate::matching::Matching;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Does the matching admit an augmenting path of length ≤ `max_len`
/// (odd)? Brute-force alternating DFS from every free vertex.
pub fn has_augmenting_path_up_to(g: &CsrGraph, m: &Matching, max_len: usize) -> bool {
    assert!(max_len % 2 == 1);
    let n = g.num_vertices();
    let mut on_path = vec![false; n];
    for v in 0..n {
        let v = VertexId::new(v);
        if m.is_matched(v) || g.degree(v) == 0 {
            continue;
        }
        on_path[v.index()] = true;
        if dfs_unmatched(g, m, v, max_len, &mut on_path) {
            on_path[v.index()] = false;
            return true;
        }
        on_path[v.index()] = false;
    }
    false
}

/// Extend from `v` over a *non-matching* edge; `budget` edges remain.
fn dfs_unmatched(
    g: &CsrGraph,
    m: &Matching,
    v: VertexId,
    budget: usize,
    on_path: &mut [bool],
) -> bool {
    if budget == 0 {
        return false;
    }
    for u in g.neighbors(v) {
        if on_path[u.index()] || m.mate(v) == Some(u) {
            continue;
        }
        if !m.is_matched(u) {
            return true; // free-to-free completes an augmenting path
        }
        // u is matched: the path must continue over its matching edge.
        let w = m.mate(u).expect("just checked");
        if on_path[w.index()] {
            continue;
        }
        on_path[u.index()] = true;
        on_path[w.index()] = true;
        if budget >= 2 && dfs_unmatched(g, m, w, budget - 2, on_path) {
            on_path[u.index()] = false;
            on_path[w.index()] = false;
            return true;
        }
        on_path[u.index()] = false;
        on_path[w.index()] = false;
    }
    false
}

/// Certify that `m` is a `(1 + 1/k)`-approximate MCM via the classical
/// criterion: no augmenting path of length ≤ 2k−1 exists.
pub fn certify_approximation(g: &CsrGraph, m: &Matching, k: usize) -> bool {
    assert!(k >= 1);
    m.is_valid_for(g) && !has_augmenting_path_up_to(g, m, 2 * k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blossom::maximum_matching;
    use crate::bounded_aug::approx_maximum_matching;
    use crate::greedy::greedy_maximal_matching;
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{cycle, gnp, path};

    #[test]
    fn detects_length_one_path() {
        let g = path(2);
        let empty = Matching::new(2);
        assert!(has_augmenting_path_up_to(&g, &empty, 1));
    }

    #[test]
    fn detects_length_three_path_only_at_budget() {
        // 0-1-2-3 with (1,2) matched: the only augmenting path has length 3.
        let g = path(4);
        let m = Matching::from_pairs(4, [(VertexId(1), VertexId(2))]);
        assert!(!has_augmenting_path_up_to(&g, &m, 1));
        assert!(has_augmenting_path_up_to(&g, &m, 3));
    }

    #[test]
    fn maximum_matching_has_no_augmenting_path() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..15 {
            let g = gnp(14, 0.3, &mut rng);
            let m = maximum_matching(&g);
            assert!(
                !has_augmenting_path_up_to(&g, &m, 13),
                "maximum matching admits an augmenting path"
            );
        }
    }

    #[test]
    fn certifies_bounded_aug_output() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..15 {
            let g = gnp(16, 0.25, &mut rng);
            for k in 1..=3usize {
                let m = approx_maximum_matching(&g, 1.0 / k as f64);
                assert!(
                    certify_approximation(&g, &m, k),
                    "k = {k}: short augmenting path survived"
                );
            }
        }
    }

    #[test]
    fn maximal_matching_certifies_k1_only() {
        // A greedy maximal matching never has length-1 augmenting paths
        // but may have length-3 ones.
        let g = path(4);
        let ends = Matching::from_pairs(4, [(VertexId(1), VertexId(2))]);
        assert!(certify_approximation(&g, &ends, 1));
        assert!(!certify_approximation(&g, &ends, 2));
        let gm = greedy_maximal_matching(&g);
        assert!(certify_approximation(&g, &gm, 1));
    }

    #[test]
    fn odd_cycle_blossom_case() {
        // C5 with a maximum matching: no augmenting path even though two
        // free-ish structures exist through the odd cycle.
        let g = cycle(5);
        let m = Matching::from_pairs(5, [(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))]);
        assert!(!has_augmenting_path_up_to(&g, &m, 5));
    }

    #[test]
    fn invalid_matching_fails_certification() {
        let g = from_edges(4, [(0, 1)]);
        let bogus = Matching::from_pairs(4, [(VertexId(2), VertexId(3))]); // not an edge
        assert!(!certify_approximation(&g, &bogus, 1));
    }
}
