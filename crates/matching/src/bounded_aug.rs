//! `(1 + 1/k)`-approximate maximum matching on general graphs via
//! bounded-length augmentation.
//!
//! The classical fact behind Hopcroft–Karp (and behind the `O(m/ε)`
//! approximation the paper invokes on its sparsifier): if a matching `M`
//! admits no augmenting path of length ≤ 2k−1, then
//! `|M| ≥ k/(k+1) · |MCM|`, i.e. `M` is a `(1 + 1/k)`-approximate MCM.
//!
//! We reach that state by repeatedly running the depth-capped blossom
//! search of [`crate::blossom::BlossomSearcher`] from every free vertex,
//! in phases of increasing cap 1, 3, …, 2k−1, starting from a greedy
//! maximal matching. Each successful search augments (so there are at most
//! `|MCM|` successes overall) and each failed search at cap `2k−1`
//! certifies no short path starts at that root. A final full sweep at the
//! target cap with no successes certifies the guarantee.

use crate::blossom::BlossomSearcher;
use crate::greedy::greedy_maximal_matching;
use crate::matching::Matching;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Statistics from a bounded-augmentation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AugStats {
    /// Total augmenting paths flipped across all cap values.
    pub augmentations: usize,
    /// Total capped searches performed (successful or not).
    pub searches: usize,
    /// Half-edges examined across all searches (machine-independent work).
    pub edge_visits: u64,
}

/// The path-length bound achieving a `(1+ε)`-approximation:
/// `k = ⌈1/ε⌉`, paths of length ≤ `2k − 1`.
pub fn max_path_len_for_eps(eps: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    let k = (1.0 / eps).ceil() as usize;
    2 * k.max(1) - 1
}

/// Compute a `(1+ε)`-approximate maximum matching.
///
/// ```
/// use sparsimatch_graph::generators::path;
/// use sparsimatch_matching::bounded_aug::approx_maximum_matching;
///
/// let g = path(101); // MCM = 50
/// let m = approx_maximum_matching(&g, 0.25); // guarantee ≥ 4/5 · 50 = 40
/// assert!(m.len() >= 40);
/// assert!(m.is_valid_for(&g));
/// ```
pub fn approx_maximum_matching(g: &CsrGraph, eps: f64) -> Matching {
    let init = greedy_maximal_matching(g);
    approx_maximum_matching_from(g, init, eps).0
}

/// Grow `init` into a `(1+ε)`-approximate MCM; returns stats as well.
pub fn approx_maximum_matching_from(
    g: &CsrGraph,
    init: Matching,
    eps: f64,
) -> (Matching, AugStats) {
    let max_len = max_path_len_for_eps(eps);
    let mut m = init;
    let stats = eliminate_augmenting_paths_up_to(g, &mut m, max_len);
    (m, stats)
}

/// Augment `m` until it admits no augmenting path of length ≤ `max_len`
/// (odd). On return `|m| ≥ k/(k+1)·|MCM(g)|` for `k = (max_len+1)/2`.
pub fn eliminate_augmenting_paths_up_to(
    g: &CsrGraph,
    m: &mut Matching,
    max_len: usize,
) -> AugStats {
    let mut searcher = BlossomSearcher::new(m);
    eliminate_augmenting_paths_up_to_with(g, m, max_len, &mut searcher)
}

/// [`eliminate_augmenting_paths_up_to`] with a caller-owned searcher: the
/// searcher is re-initialized from `m` (so any prior state is irrelevant)
/// and its buffers are reused instead of reallocated. Output and stats
/// are identical to the fresh-searcher path — `reset_from` zeroes the
/// work counter, so `edge_visits` match too.
pub fn eliminate_augmenting_paths_up_to_with(
    g: &CsrGraph,
    m: &mut Matching,
    max_len: usize,
    searcher: &mut BlossomSearcher,
) -> AugStats {
    assert!(max_len % 2 == 1, "augmenting paths have odd length");
    let mut stats = AugStats::default();
    searcher.reset_from(m);
    let max_cap = max_len as u32;
    // Bulk phase: multi-source forest phases, shortest caps first (the
    // Hopcroft–Karp schedule). Each phase costs O(m) and flips a set of
    // vertex-disjoint augmenting paths at once, so the bulk cost is
    // O(phases·m) rather than one full forest search per augmentation —
    // the difference between milliseconds and seconds on families where
    // the sparsifier stays dense and greedy leaves many free vertices
    // (e.g. clique-union).
    let mut cap = 1u32;
    loop {
        stats.searches += 1;
        let flips = searcher.augment_phase(g, cap);
        if flips > 0 {
            stats.augmentations += flips;
        } else if cap >= max_cap {
            break;
        } else {
            cap += 2;
        }
    }
    // Certification sweep: the capped forest search can, in rare blossom
    // configurations, miss a short path blocked by another tree's odd
    // claim. Re-check every free vertex with a dedicated single-root
    // search; loop until a full sweep is clean.
    loop {
        let mut progressed = false;
        for v in 0..g.num_vertices() as u32 {
            let v = VertexId(v);
            if g.degree(v) == 0 || !searcher.is_free_vertex(v) {
                continue;
            }
            stats.searches += 1;
            if searcher.try_augment(g, v, max_cap) {
                stats.augmentations += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    stats.edge_visits = searcher.work();
    searcher.write_matching_into(m);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blossom::maximum_matching;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{
        clique_union, cycle, gnp, path, two_cliques_bridge, CliqueUnionConfig,
    };

    #[test]
    fn k_from_eps() {
        assert_eq!(max_path_len_for_eps(1.0), 1);
        assert_eq!(max_path_len_for_eps(0.5), 3);
        assert_eq!(max_path_len_for_eps(0.34), 5);
        assert_eq!(max_path_len_for_eps(0.25), 7);
        assert_eq!(max_path_len_for_eps(0.1), 19);
    }

    #[test]
    fn exactness_at_small_eps_on_paths() {
        // A path's longest augmenting need is bounded; eps small enough
        // gives the exact answer.
        let g = path(20);
        let m = approx_maximum_matching(&g, 0.05);
        assert_eq!(m.len(), maximum_matching(&g).len());
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn guarantee_holds_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..30 {
            let g = gnp(60, 0.06, &mut rng);
            let exact = maximum_matching(&g).len();
            for &eps in &[1.0f64, 0.5, 0.34, 0.2] {
                let k = (1.0 / eps).ceil() as usize;
                let m = approx_maximum_matching(&g, eps);
                assert!(m.is_valid_for(&g));
                assert!(
                    m.len() * (k + 1) >= exact * k,
                    "trial {trial} eps {eps}: {} vs exact {exact}",
                    m.len()
                );
            }
        }
    }

    #[test]
    fn guarantee_holds_on_bounded_beta_graphs() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10 {
            let g = clique_union(
                CliqueUnionConfig {
                    n: 60,
                    diversity: 3,
                    clique_size: 10,
                },
                &mut rng,
            );
            let exact = maximum_matching(&g).len();
            let m = approx_maximum_matching(&g, 0.25);
            assert!(m.len() * 5 >= exact * 4, "{} vs {exact}", m.len());
        }
    }

    #[test]
    fn blossom_heavy_instance() {
        // Odd cycles chained: flowers everywhere.
        let mut edges = Vec::new();
        let mut n = 0;
        for _ in 0..8 {
            // 5-cycle
            for i in 0..5 {
                edges.push((n + i, n + (i + 1) % 5));
            }
            if n > 0 {
                edges.push((n - 5, n)); // link to previous flower
            }
            n += 5;
        }
        let g = from_edges(n, edges);
        let exact = maximum_matching(&g).len();
        let m = approx_maximum_matching(&g, 0.2);
        assert!(m.len() * 6 >= exact * 5);
    }

    #[test]
    fn exact_on_bridge_instance_with_small_eps() {
        let (g, _) = two_cliques_bridge(9);
        let exact = maximum_matching(&g).len();
        let m = approx_maximum_matching(&g, 0.05);
        assert_eq!(m.len(), exact);
    }

    #[test]
    fn odd_cycle_already_optimal() {
        let g = cycle(9);
        let m = approx_maximum_matching(&g, 0.3);
        // MCM(C9) = 4; greedy gets >= 3; with cap >= 3 it must reach 4 or
        // already be there; guarantee: >= 4 * (4/5) = 3.2 => >= 4 with
        // integer... actually >= ceil(3.2) is not implied; check guarantee.
        assert!(m.len() * 5 >= 4 * 4);
    }

    #[test]
    fn stats_are_recorded() {
        let g = path(30);
        let init = Matching::new(30);
        let (m, stats) = approx_maximum_matching_from(&g, init, 0.5);
        assert!(stats.searches > 0);
        assert!(stats.augmentations >= m.len());
    }

    #[test]
    fn recycled_searcher_matches_fresh_exactly() {
        use crate::blossom::BlossomSearcher;
        use crate::greedy::greedy_maximal_matching;
        let mut rng = StdRng::seed_from_u64(23);
        // One searcher dragged across graphs of different sizes must give
        // the same matching AND the same stats as a fresh searcher every
        // time (reset_from re-zeroes the work counter).
        let mut recycled = BlossomSearcher::new(&Matching::new(0));
        let graphs = [gnp(70, 0.08, &mut rng), path(45), cycle(33), {
            let mut rng2 = StdRng::seed_from_u64(24);
            gnp(20, 0.3, &mut rng2)
        }];
        for (i, g) in graphs.iter().enumerate() {
            for max_len in [1usize, 3, 7] {
                let mut fresh_m = greedy_maximal_matching(g);
                let mut warm_m = fresh_m.clone();
                let fresh_stats = eliminate_augmenting_paths_up_to(g, &mut fresh_m, max_len);
                let warm_stats =
                    eliminate_augmenting_paths_up_to_with(g, &mut warm_m, max_len, &mut recycled);
                assert_eq!(fresh_m, warm_m, "graph {i} max_len {max_len}");
                assert_eq!(
                    (
                        fresh_stats.augmentations,
                        fresh_stats.searches,
                        fresh_stats.edge_visits
                    ),
                    (
                        warm_stats.augmentations,
                        warm_stats.searches,
                        warm_stats.edge_visits
                    ),
                    "graph {i} max_len {max_len}"
                );
            }
        }
    }
}
