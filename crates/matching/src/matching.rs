//! The matching representation shared by every algorithm in the workspace.

use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

const UNMATCHED: u32 = u32::MAX;

/// A matching over a fixed vertex set, stored as a mate array.
///
/// ```
/// use sparsimatch_matching::Matching;
/// use sparsimatch_graph::ids::VertexId;
///
/// let mut m = Matching::new(4);
/// assert!(m.add_pair(VertexId(0), VertexId(2)));
/// assert!(!m.add_pair(VertexId(2), VertexId(3)), "vertex 2 is taken");
/// assert_eq!(m.mate(VertexId(0)), Some(VertexId(2)));
/// assert_eq!(m.len(), 1);
/// ```
///
/// The invariant `mate[mate[v]] == v` is maintained by construction; all
/// mutating operations keep it. A `Matching` does not hold a reference to
/// its graph — audits like [`Matching::is_valid_for`] take the graph
/// explicitly, which lets one matching be checked against several graphs
/// (e.g. a matching computed on a sparsifier audited against the original
/// graph, the central move of the whole paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<u32>,
    size: usize,
}

impl Matching {
    /// The empty matching on `n` vertices.
    pub fn new(n: usize) -> Self {
        Matching {
            mate: vec![UNMATCHED; n],
            size: 0,
        }
    }

    /// Reset to the empty matching on `n` vertices, keeping the mate
    /// array's capacity. The scratch-reuse equivalent of
    /// [`Matching::new`]: no allocation when `n` fits the existing
    /// capacity.
    pub fn reset(&mut self, n: usize) {
        self.mate.clear();
        self.mate.resize(n, UNMATCHED);
        self.size = 0;
    }

    /// Build from explicit pairs; panics if any vertex repeats.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let mut m = Matching::new(n);
        for (u, v) in pairs {
            assert!(m.add_pair(u, v), "vertex reused in from_pairs");
        }
        m
    }

    /// Number of vertices the matching is defined over.
    pub fn num_vertices(&self) -> usize {
        self.mate.len()
    }

    /// Number of matched pairs `|M|`.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if no vertex is matched.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether `v` is matched.
    #[inline(always)]
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.mate[v.index()] != UNMATCHED
    }

    /// The mate of `v`, if any.
    #[inline(always)]
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        let m = self.mate[v.index()];
        (m != UNMATCHED).then_some(VertexId(m))
    }

    /// Match `u` with `v`. Returns `false` (and changes nothing) if either
    /// endpoint is already matched or `u == v`.
    pub fn add_pair(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.is_matched(u) || self.is_matched(v) {
            return false;
        }
        self.mate[u.index()] = v.0;
        self.mate[v.index()] = u.0;
        self.size += 1;
        true
    }

    /// Unmatch the pair containing `v`. Returns the former mate, if any.
    pub fn remove_pair(&mut self, v: VertexId) -> Option<VertexId> {
        let m = self.mate(v)?;
        self.mate[v.index()] = UNMATCHED;
        self.mate[m.index()] = UNMATCHED;
        self.size -= 1;
        Some(m)
    }

    /// Forcibly set `mate(u) = v` and `mate(v) = u`, unmatching any previous
    /// partners. Used by augmenting-path flips.
    pub fn rematch(&mut self, u: VertexId, v: VertexId) {
        if let Some(old) = self.mate(u) {
            if old == v {
                return;
            }
            self.remove_pair(u);
        }
        if self.is_matched(v) {
            self.remove_pair(v);
        }
        let added = self.add_pair(u, v);
        debug_assert!(added);
    }

    /// The matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(u, &m)| m != UNMATCHED && (u as u32) < m)
            .map(|(u, &m)| (VertexId::new(u), VertexId(m)))
    }

    /// The matched vertices (the paper's `V_M`).
    pub fn matched_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(_v, &m)| m != UNMATCHED)
            .map(|(v, &_m)| VertexId::new(v))
    }

    /// The free vertices (the paper's `V_F`).
    pub fn free_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(_v, &m)| m == UNMATCHED)
            .map(|(v, &_m)| VertexId::new(v))
    }

    /// Is every matched pair an edge of `g` (and the mate array coherent)?
    pub fn is_valid_for(&self, g: &CsrGraph) -> bool {
        if self.mate.len() != g.num_vertices() {
            return false;
        }
        let mut count = 0usize;
        for (u, &m) in self.mate.iter().enumerate() {
            if m == UNMATCHED {
                continue;
            }
            let u = VertexId::new(u);
            let v = VertexId(m);
            if self.mate[v.index()] != u.0 {
                return false;
            }
            if !g.has_edge(u, v) {
                return false;
            }
            count += 1;
        }
        count == 2 * self.size
    }

    /// Is the matching maximal in `g` (no edge with both endpoints free)?
    pub fn is_maximal_in(&self, g: &CsrGraph) -> bool {
        g.edges()
            .all(|(_, u, v)| self.is_matched(u) || self.is_matched(v))
    }

    /// Drop any pairs that are not edges of `g` (used when edges are
    /// deleted under a dynamic matching). Returns how many pairs were
    /// dropped.
    pub fn prune_to(&mut self, g: &CsrGraph) -> usize {
        let pairs: Vec<(VertexId, VertexId)> = self.pairs().collect();
        let mut dropped = 0;
        for (u, v) in pairs {
            if !g.has_edge(u, v) {
                self.remove_pair(u);
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsimatch_graph::csr::from_edges;

    #[test]
    fn add_remove_roundtrip() {
        let mut m = Matching::new(4);
        assert!(m.add_pair(VertexId(0), VertexId(1)));
        assert!(!m.add_pair(VertexId(1), VertexId(2)), "1 already matched");
        assert!(!m.add_pair(VertexId(2), VertexId(2)), "self pair");
        assert_eq!(m.len(), 1);
        assert_eq!(m.mate(VertexId(0)), Some(VertexId(1)));
        assert_eq!(m.remove_pair(VertexId(1)), Some(VertexId(0)));
        assert_eq!(m.len(), 0);
        assert!(!m.is_matched(VertexId(0)));
    }

    #[test]
    fn rematch_flips() {
        let mut m =
            Matching::from_pairs(6, [(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))]);
        // Augment 4 - (1,0 flip) style: rematch 1 with 2.
        m.rematch(VertexId(1), VertexId(2));
        assert_eq!(m.mate(VertexId(1)), Some(VertexId(2)));
        assert!(!m.is_matched(VertexId(0)));
        assert!(!m.is_matched(VertexId(3)));
        assert_eq!(m.len(), 1);
        // Rematch to current mate is a no-op.
        m.rematch(VertexId(1), VertexId(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn validity_against_graph() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let good = Matching::from_pairs(4, [(VertexId(0), VertexId(1))]);
        assert!(good.is_valid_for(&g));
        let bad = Matching::from_pairs(4, [(VertexId(0), VertexId(2))]);
        assert!(!bad.is_valid_for(&g), "(0,2) is not an edge");
        let wrong_size = Matching::new(3);
        assert!(!wrong_size.is_valid_for(&g));
    }

    #[test]
    fn maximality_check() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mid = Matching::from_pairs(4, [(VertexId(1), VertexId(2))]);
        assert!(mid.is_maximal_in(&g));
        let end = Matching::from_pairs(4, [(VertexId(0), VertexId(1))]);
        assert!(!end.is_maximal_in(&g), "edge (2,3) is free-free");
    }

    #[test]
    fn prune_after_deletions() {
        let g_before = from_edges(4, [(0, 1), (2, 3)]);
        let g_after = from_edges(4, [(0, 1)]);
        let mut m =
            Matching::from_pairs(4, [(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))]);
        assert!(m.is_valid_for(&g_before));
        assert_eq!(m.prune_to(&g_after), 1);
        assert!(m.is_valid_for(&g_after));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn vertex_partitions() {
        let m = Matching::from_pairs(5, [(VertexId(1), VertexId(3))]);
        let matched: Vec<u32> = m.matched_vertices().map(|v| v.0).collect();
        let free: Vec<u32> = m.free_vertices().map(|v| v.0).collect();
        assert_eq!(matched, vec![1, 3]);
        assert_eq!(free, vec![0, 2, 4]);
    }
}
