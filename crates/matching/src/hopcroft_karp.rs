//! Hopcroft–Karp: exact maximum matching on bipartite graphs in
//! `O(m·√n)`, with phase accounting.
//!
//! Besides serving as an independent cross-check for the blossom
//! implementation, the phase structure (each phase augments along a
//! maximal set of vertex-disjoint *shortest* augmenting paths, and after
//! `k` phases the shortest augmenting path has length ≥ 2k+1) is the
//! original form of the `(1+ε)`-approximation the paper invokes on its
//! sparsifier: stopping after `⌈1/ε⌉` phases yields a `(1+ε)`-approximate
//! matching.

use crate::matching::Matching;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Result of a Hopcroft–Karp run.
pub struct HkResult {
    /// The matching found.
    pub matching: Matching,
    /// Number of phases executed.
    pub phases: usize,
}

/// Try to 2-color `g`; returns `side[v] = true` for one part, or `None` if
/// `g` contains an odd cycle.
pub fn bipartition(g: &CsrGraph) -> Option<Vec<bool>> {
    let n = g.num_vertices();
    let mut color: Vec<i8> = vec![-1; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if color[start] != -1 {
            continue;
        }
        color[start] = 0;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for u in g.neighbors(VertexId(v)) {
                let u = u.index();
                if color[u] == -1 {
                    color[u] = 1 - color[v as usize];
                    queue.push_back(u as u32);
                } else if color[u] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c == 0).collect())
}

/// Hopcroft–Karp with an explicit bipartition (`side[v] == true` for left
/// vertices). Runs to optimality; use [`hopcroft_karp_phases`] to stop
/// early for a `(1 + 1/phases)`-approximation.
pub fn hopcroft_karp(g: &CsrGraph, side: &[bool]) -> HkResult {
    hopcroft_karp_phases(g, side, usize::MAX)
}

/// Convenience: bipartition automatically, `None` if `g` is not bipartite.
pub fn hopcroft_karp_auto(g: &CsrGraph) -> Option<Matching> {
    let side = bipartition(g)?;
    Some(hopcroft_karp(g, &side).matching)
}

/// Hopcroft–Karp limited to at most `max_phases` phases. After `k` full
/// phases the matching is a `(1 + 1/k)`-approximate MCM.
pub fn hopcroft_karp_phases(g: &CsrGraph, side: &[bool], max_phases: usize) -> HkResult {
    let n = g.num_vertices();
    assert_eq!(side.len(), n);
    debug_assert!(
        g.edges()
            .all(|(_, u, v)| side[u.index()] != side[v.index()]),
        "side[] must be a proper bipartition"
    );
    let lefts: Vec<u32> = (0..n as u32).filter(|&v| side[v as usize]).collect();
    let mut mate = vec![NONE; n];
    let mut dist = vec![INF; n];
    let mut phases = 0usize;
    let mut queue = VecDeque::new();

    while phases < max_phases {
        // BFS from free left vertices to layer the graph.
        queue.clear();
        for &l in &lefts {
            if mate[l as usize] == NONE {
                dist[l as usize] = 0;
                queue.push_back(l);
            } else {
                dist[l as usize] = INF;
            }
        }
        let mut found_free_right = false;
        let mut bfs_order: Vec<u32> = Vec::new();
        while let Some(v) = queue.pop_front() {
            bfs_order.push(v);
            for u in g.neighbors(VertexId(v)) {
                let u = u.0;
                let next = mate[u as usize];
                if next == NONE {
                    found_free_right = true;
                } else if dist[next as usize] == INF {
                    dist[next as usize] = dist[v as usize] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_free_right {
            break;
        }
        phases += 1;
        // Layered DFS for a maximal set of disjoint shortest paths.
        let mut augmented_any = false;
        for &l in &lefts {
            if mate[l as usize] == NONE && dfs(g, l, &mut mate, &mut dist) {
                augmented_any = true;
            }
        }
        if !augmented_any {
            break;
        }
    }

    let mut matching = Matching::new(n);
    for (v, &m) in mate.iter().enumerate() {
        if m != NONE && (v as u32) < m {
            matching.add_pair(VertexId::new(v), VertexId(m));
        }
    }
    HkResult { matching, phases }
}

/// König's theorem certificate: from a *maximum* bipartite matching,
/// extract a vertex cover of the same size. Let `Z` be the vertices
/// reachable from free left vertices by alternating paths (non-matching
/// edges L→R, matching edges R→L); then `(L ∖ Z) ∪ (R ∩ Z)` is a vertex
/// cover with `|VC| = |M|`, certifying the matching's optimality.
///
/// Returns the cover; callers can assert `cover.len() == matching.len()`
/// and coverage of every edge (the tests do).
pub fn koenig_vertex_cover(
    g: &CsrGraph,
    side: &[bool],
    matching: &crate::matching::Matching,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert_eq!(side.len(), n);
    let mut in_z = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for v in 0..n {
        if side[v] && !matching.is_matched(VertexId::new(v)) {
            in_z[v] = true;
            queue.push_back(v as u32);
        }
    }
    while let Some(v) = queue.pop_front() {
        if side[v as usize] {
            // Left: cross non-matching edges.
            for u in g.neighbors(VertexId(v)) {
                if matching.mate(VertexId(v)) != Some(u) && !in_z[u.index()] {
                    in_z[u.index()] = true;
                    queue.push_back(u.0);
                }
            }
        } else if let Some(u) = matching.mate(VertexId(v)) {
            // Right: cross the matching edge only.
            if !in_z[u.index()] {
                in_z[u.index()] = true;
                queue.push_back(u.0);
            }
        }
    }
    (0..n)
        .filter(|&v| (side[v] && !in_z[v]) || (!side[v] && in_z[v]))
        .map(VertexId::new)
        .collect()
}

fn dfs(g: &CsrGraph, v: u32, mate: &mut [u32], dist: &mut [u32]) -> bool {
    for u in g.neighbors(VertexId(v)) {
        let u = u.0;
        let next = mate[u as usize];
        if next == NONE || (dist[next as usize] == dist[v as usize] + 1 && dfs(g, next, mate, dist))
        {
            mate[v as usize] = u;
            mate[u as usize] = v;
            return true;
        }
    }
    dist[v as usize] = INF; // dead end: prune for this phase
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::generators::{bipartite_gnp, complete_bipartite, cycle, path};

    #[test]
    fn bipartition_of_even_cycle() {
        let side = bipartition(&cycle(8)).unwrap();
        assert_eq!(side.iter().filter(|&&s| s).count(), 4);
    }

    #[test]
    fn odd_cycle_not_bipartite() {
        assert!(bipartition(&cycle(7)).is_none());
    }

    #[test]
    fn complete_bipartite_mcm() {
        let g = complete_bipartite(5, 8);
        let m = hopcroft_karp_auto(&g).unwrap();
        assert_eq!(m.len(), 5);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn path_matching() {
        let g = path(9);
        let m = hopcroft_karp_auto(&g).unwrap();
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn phase_count_is_small() {
        // Hopcroft–Karp needs O(sqrt(n)) phases.
        let mut rng = StdRng::seed_from_u64(3);
        let g = bipartite_gnp(200, 200, 0.05, &mut rng);
        let side = bipartition(&g).unwrap();
        let res = hopcroft_karp(&g, &side);
        assert!(res.phases <= 30, "phases = {}", res.phases);
        assert!(res.matching.is_valid_for(&g));
    }

    #[test]
    fn phase_limit_gives_approximation() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let g = bipartite_gnp(60, 60, 0.08, &mut rng);
            let side = bipartition(&g).unwrap();
            let exact = hopcroft_karp(&g, &side).matching.len();
            for k in 1..=4usize {
                let approx = hopcroft_karp_phases(&g, &side, k).matching.len();
                // After k phases: |M| >= k/(k+1) * MCM.
                assert!(
                    approx * (k + 1) >= exact * k,
                    "k={k}: {approx} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = sparsimatch_graph::csr::from_edges(5, []);
        let m = hopcroft_karp_auto(&g).unwrap();
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn koenig_cover_certifies_optimality() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let g = bipartite_gnp(25, 30, 0.1, &mut rng);
            let side = bipartition(&g).unwrap();
            let m = hopcroft_karp(&g, &side).matching;
            let cover = koenig_vertex_cover(&g, &side, &m);
            // König: |VC| = |M| for maximum bipartite matchings.
            assert_eq!(cover.len(), m.len());
            // ... and it is a vertex cover.
            let in_cover: std::collections::HashSet<u32> = cover.iter().map(|v| v.0).collect();
            for (_, u, v) in g.edges() {
                assert!(
                    in_cover.contains(&u.0) || in_cover.contains(&v.0),
                    "edge ({u}, {v}) uncovered"
                );
            }
        }
    }

    #[test]
    fn koenig_on_complete_bipartite() {
        let g = complete_bipartite(3, 7);
        let side = bipartition(&g).unwrap();
        let m = hopcroft_karp(&g, &side).matching;
        let cover = koenig_vertex_cover(&g, &side, &m);
        assert_eq!(cover.len(), 3, "min cover of K_{{3,7}} is the small side");
    }
}
