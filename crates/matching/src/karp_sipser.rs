//! The Karp–Sipser heuristic: degree-1 reductions + random greedy.
//!
//! A classical high-quality maximal-matching heuristic: while a vertex of
//! degree 1 exists, matching its unique edge is *optimal* (some maximum
//! matching contains it), so do that; otherwise match a uniformly random
//! edge and recurse on the residual graph. On many graph families this
//! lands within 1–2% of optimal — a much stronger practical baseline
//! than plain greedy, included here so the sparsifier pipeline is
//! compared against the best cheap heuristic rather than a strawman.

use crate::matching::Matching;
use rand::Rng;
use sparsimatch_graph::csr::CsrGraph;
use sparsimatch_graph::ids::VertexId;

/// Compute a maximal matching with the Karp–Sipser heuristic. O(m α)
/// expected (residual degrees maintained incrementally).
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sparsimatch_graph::generators::path;
/// use sparsimatch_matching::karp_sipser::karp_sipser_matching;
///
/// // Degree-1 reductions alone solve trees exactly.
/// let mut rng = StdRng::seed_from_u64(1);
/// let m = karp_sipser_matching(&path(9), &mut rng);
/// assert_eq!(m.len(), 4);
/// ```
pub fn karp_sipser_matching(g: &CsrGraph, rng: &mut impl Rng) -> Matching {
    let n = g.num_vertices();
    let mut m = Matching::new(n);
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(VertexId::new(v))).collect();
    // Stack of (possibly stale) degree-1 candidates.
    let mut ones: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] == 1).collect();
    // Random processing order for phase-2 edges.
    let mut edge_order: Vec<u32> = (0..g.num_edges() as u32).collect();
    use rand::seq::SliceRandom;
    edge_order.shuffle(rng);
    let mut cursor = 0usize;

    let kill = |v: usize, alive: &mut [bool], degree: &mut [usize], ones: &mut Vec<u32>| {
        alive[v] = false;
        for u in g.neighbors(VertexId::new(v)) {
            if alive[u.index()] {
                degree[u.index()] -= 1;
                if degree[u.index()] == 1 {
                    ones.push(u.0);
                }
            }
        }
    };

    loop {
        // Phase 1: exhaust degree-1 reductions.
        while let Some(v) = ones.pop() {
            let v = v as usize;
            if !alive[v] || degree[v] != 1 {
                continue; // stale entry
            }
            let partner = g
                .neighbors(VertexId::new(v))
                .find(|u| alive[u.index()])
                .expect("degree-1 vertex has a live neighbor");
            m.add_pair(VertexId::new(v), partner);
            kill(v, &mut alive, &mut degree, &mut ones);
            kill(partner.index(), &mut alive, &mut degree, &mut ones);
        }
        // Phase 2: one random edge, then back to reductions.
        let mut matched_any = false;
        while cursor < edge_order.len() {
            let e = sparsimatch_graph::ids::EdgeId(edge_order[cursor]);
            cursor += 1;
            let (u, v) = g.edge_endpoints(e);
            if alive[u.index()] && alive[v.index()] {
                m.add_pair(u, v);
                kill(u.index(), &mut alive, &mut degree, &mut ones);
                kill(v.index(), &mut alive, &mut degree, &mut ones);
                matched_any = true;
                break;
            }
        }
        if !matched_any {
            break;
        }
    }
    debug_assert!(m.is_valid_for(g));
    debug_assert!(m.is_maximal_in(g));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blossom::maximum_matching;
    use rand::{rngs::StdRng, SeedableRng};
    use sparsimatch_graph::csr::from_edges;
    use sparsimatch_graph::generators::{clique, gnp, path, star};

    #[test]
    fn exact_on_paths() {
        // Degree-1 reduction alone solves paths exactly.
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 10, 31] {
            let g = path(n);
            let m = karp_sipser_matching(&g, &mut rng);
            assert_eq!(m.len(), n / 2, "path {n}");
        }
    }

    #[test]
    fn exact_on_stars_and_trees() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(karp_sipser_matching(&star(9), &mut rng).len(), 1);
        // A spider: center with three length-2 legs. MCM = 3.
        let g = from_edges(7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]);
        assert_eq!(karp_sipser_matching(&g, &mut rng).len(), 3);
    }

    #[test]
    fn valid_and_maximal_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = gnp(80, 0.06, &mut rng);
            let m = karp_sipser_matching(&g, &mut rng);
            assert!(m.is_valid_for(&g));
            assert!(m.is_maximal_in(&g));
        }
    }

    #[test]
    fn near_optimal_on_sparse_random_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ks_total = 0usize;
        let mut opt_total = 0usize;
        for _ in 0..10 {
            let g = gnp(200, 0.015, &mut rng);
            ks_total += karp_sipser_matching(&g, &mut rng).len();
            opt_total += maximum_matching(&g).len();
        }
        assert!(
            ks_total * 100 >= opt_total * 96,
            "Karp-Sipser at {ks_total}/{opt_total} — below its usual quality"
        );
    }

    #[test]
    fn clique_is_perfect() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = karp_sipser_matching(&clique(30), &mut rng);
        assert_eq!(m.len(), 15);
    }
}
