//! Property-based tests for the matching substrate.

use proptest::prelude::*;
use sparsimatch_graph::csr::from_edges;
use sparsimatch_matching::blossom::maximum_matching;
use sparsimatch_matching::bounded_aug::approx_maximum_matching;
use sparsimatch_matching::greedy::greedy_maximal_matching;
use sparsimatch_matching::hopcroft_karp::{bipartition, hopcroft_karp};

const N: usize = 18;

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..80)
}

fn arb_bipartite_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    // Left 0..9, right 9..18.
    proptest::collection::vec((0..9usize, 9..N), 0..60)
}

/// Exponential-time exact MCM used as an independent oracle.
fn brute_force_mcm(edges: &[(u32, u32)]) -> usize {
    fn rec(edges: &[(u32, u32)], used: &mut u64, i: usize) -> usize {
        if i == edges.len() {
            return 0;
        }
        let skip = rec(edges, used, i + 1);
        let (u, v) = edges[i];
        let mask = (1u64 << u) | (1u64 << v);
        if *used & mask == 0 {
            *used |= mask;
            let take = 1 + rec(edges, used, i + 1);
            *used &= !mask;
            skip.max(take)
        } else {
            skip
        }
    }
    rec(edges, &mut 0, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_is_valid_and_maximal(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let m = greedy_maximal_matching(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn blossom_matches_brute_force(edges in arb_edges()) {
        let g = from_edges(N, edges);
        let edge_list: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let fast = maximum_matching(&g);
        prop_assert!(fast.is_valid_for(&g));
        prop_assert_eq!(fast.len(), brute_force_mcm(&edge_list));
    }

    #[test]
    fn hopcroft_karp_agrees_with_blossom_on_bipartite(edges in arb_bipartite_edges()) {
        let g = from_edges(N, edges);
        let side = bipartition(&g).expect("bipartite by construction");
        let hk = hopcroft_karp(&g, &side).matching;
        let bl = maximum_matching(&g);
        prop_assert!(hk.is_valid_for(&g));
        prop_assert_eq!(hk.len(), bl.len());
    }

    #[test]
    fn bounded_aug_guarantee(edges in arb_edges(), k in 1usize..5) {
        let g = from_edges(N, edges);
        let eps = 1.0 / k as f64;
        let approx = approx_maximum_matching(&g, eps);
        let exact = maximum_matching(&g).len();
        prop_assert!(approx.is_valid_for(&g));
        // |M| >= k/(k+1) * MCM.
        prop_assert!(
            approx.len() * (k + 1) >= exact * k,
            "k={} approx={} exact={}", k, approx.len(), exact
        );
    }

    #[test]
    fn matchings_never_exceed_half_the_vertices(edges in arb_edges()) {
        let g = from_edges(N, edges);
        prop_assert!(maximum_matching(&g).len() <= N / 2);
        prop_assert!(greedy_maximal_matching(&g).len() <= N / 2);
    }
}
