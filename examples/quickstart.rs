//! Quickstart: sparsify a dense bounded-β graph and match on the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A dense graph of bounded neighborhood independence: two random
    // clique layers over 2 000 vertices (β ≤ 2, ~500k edges).
    let g = clique_union(
        CliqueUnionConfig {
            n: 2_000,
            diversity: 2,
            clique_size: 500,
        },
        &mut rng,
    );
    println!(
        "input: n = {}, m = {}, beta <= 2",
        g.num_vertices(),
        g.num_edges()
    );

    // Parameters: target a (1+0.2)-approximate matching. `practical` sizes
    // Δ at 1/20 of the paper's proof constant, which experiment E11 shows
    // is already reliable on all benchmark families.
    let params = SparsifierParams::practical(2, 0.2);
    println!(
        "sparsifier: delta = {}, low-degree threshold = {}",
        params.delta,
        params.mark_cap()
    );

    // The whole Theorem 3.1 pipeline: build G_Δ in O(n·Δ) adjacency-array
    // probes, then run the (1+ε) matching algorithm on it. All three
    // stages run on the requested worker count; the output depends only
    // on the seed.
    let result = approx_mcm_via_sparsifier(&g, &params, 42, 4).unwrap();
    println!(
        "sparsifier edges: {} ({}% of m), probes: {} ({}% of m)",
        result.sparsifier.edges,
        100 * result.sparsifier.edges / g.num_edges(),
        result.probes.total(),
        100 * result.probes.total() as usize / g.num_edges(),
    );
    println!("matching found: {} pairs", result.matching.len());

    // Audit against the exact optimum (expensive; done here only to show
    // the guarantee is real).
    let exact = maximum_matching(&g).len();
    println!(
        "exact MCM: {} -> realized ratio {:.4} (target <= 1.2)",
        exact,
        exact as f64 / result.matching.len() as f64
    );
    assert!(result.matching.is_valid_for(&g));
    assert!(exact as f64 <= 1.2 * result.matching.len() as f64);
    println!("guarantee verified.");
}
