//! Fully dynamic matching under an adaptive adversary (Theorem 3.5).
//!
//! Scenario: a matchmaking service over a churning relationship graph —
//! an adversary who *sees the published matching* keeps deleting exactly
//! the matched edges. The window scheme maintains a `(1+ε)`-approximate
//! matching with per-update work that is flat in the graph size, while
//! the threshold (Barenboim–Maimon style) baseline's repair cost grows
//! with `√(βn)`.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::dynamic::adversary::{Adversary, Policy, StreamAdversary};
use sparsimatch::dynamic::baselines::ThresholdMaximalMatching;
use sparsimatch::dynamic::harness::run_dynamic;
use sparsimatch::dynamic::scheme::DynamicMatcher;
use sparsimatch::prelude::*;

fn main() {
    let steps = 6_000;
    println!("adaptive adversary, {steps} updates per run\n");
    println!(
        "{:>6}  {:>22}  {:>10} {:>10} {:>10}  {:>11}",
        "n", "algorithm", "max work", "p99 work", "mean work", "worst ratio"
    );
    for n in [200usize, 400, 800] {
        let mut rng = StdRng::seed_from_u64(0xD15EA5E + n as u64);
        let host = clique_union(
            CliqueUnionConfig {
                n,
                diversity: 2,
                clique_size: n / 4,
            },
            &mut rng,
        );

        // The paper's window scheme.
        let params = SparsifierParams::practical(2, 0.5);
        let mut dm = DynamicMatcher::new(n, params, 1);
        let mut adv = StreamAdversary::new(&host, Policy::AdaptiveDeleteMatched { p_insert: 0.7 });
        let s = run_dynamic(&mut dm, &mut adv, steps, steps / 6, &mut rng);
        println!(
            "{:>6}  {:>22}  {:>10} {:>10} {:>10.1}  {:>11.3}",
            n, "window scheme", s.max_work, s.p99_work, s.avg_work, s.worst_ratio
        );

        // The √(βn) baseline.
        let mut tm = ThresholdMaximalMatching::new(n, 2);
        let mut adv = StreamAdversary::new(&host, Policy::AdaptiveDeleteMatched { p_insert: 0.7 });
        let mut max_w = 0u64;
        let mut sum_w = 0u64;
        for _ in 0..steps {
            let upd = adv.next(tm.matching(), &mut rng);
            let w = tm.apply(upd);
            max_w = max_w.max(w);
            sum_w += w;
        }
        println!(
            "{:>6}  {:>22}  {:>10} {:>10} {:>10.1}  {:>11}",
            n,
            format!("threshold MM (T={})", tm.threshold()),
            max_w,
            "-",
            sum_w as f64 / steps as f64,
            "~2",
        );
    }
    println!("\nThe scheme's max work stays flat as n quadruples; the baseline's grows.");
}
