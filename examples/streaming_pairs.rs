//! One-pass streaming matching (the memory-constrained setting the paper
//! sketches at the top of Section 3).
//!
//! Scenario: a firehose of "compatible pair" events (edges) arrives once
//! and cannot be stored — think realtime ride-sharing or ad-exchange
//! pairing over a bounded-β compatibility structure. Per-vertex
//! reservoirs retain a `G_Δ`-distributed subgraph in `O(n·Δ)` memory;
//! at the end of the window a `(1+ε)`-approximate matching is computed
//! from the retained edges alone.
//!
//! ```text
//! cargo run --release --example streaming_pairs
//! ```

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::prelude::*;
use sparsimatch::stream::{StreamingGreedyMatcher, StreamingSparsifierMatcher};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 1_500;
    let g = clique_union(
        CliqueUnionConfig {
            n,
            diversity: 2,
            clique_size: n / 2,
        },
        &mut rng,
    );
    let mut stream: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
    stream.shuffle(&mut rng);
    println!(
        "stream: {} compatibility events over {} participants (beta <= 2)",
        stream.len(),
        n
    );

    let params = SparsifierParams::practical(2, 0.25);
    let mut reservoir = StreamingSparsifierMatcher::new(n, params);
    let mut greedy = StreamingGreedyMatcher::new(n);
    for &(u, v) in &stream {
        reservoir.push_edge(u, v, &mut rng);
        greedy.push_edge(u, v);
    }
    let (rm, rstats) = reservoir.finish();
    let (gm, _) = greedy.finish();
    let exact = maximum_matching(&g).len();

    println!(
        "reservoir matcher: {} pairs from {} retained edges ({:.1}% of the stream) — ratio {:.4}",
        rm.len(),
        rstats.edges_retained,
        100.0 * rstats.edges_retained as f64 / stream.len() as f64,
        exact as f64 / rm.len().max(1) as f64,
    );
    println!(
        "one-pass greedy:   {} pairs from O(n) memory — ratio {:.4} (guarantee only 2)",
        gm.len(),
        exact as f64 / gm.len().max(1) as f64,
    );
    assert!(rm.is_valid_for(&g));
    assert!(exact as f64 <= 1.25 * rm.len() as f64);
}
