//! Wireless pairing: maximum device pairing in a unit-disk radio network,
//! computed *distributively* in a number of rounds independent of the
//! network size (Theorem 3.2).
//!
//! Scenario: `n` sensors are scattered over a field; two sensors can form
//! a direct radio pair iff they are within range (a unit-disk graph —
//! bounded growth, β ≤ 5). We want to pair up as many sensors as possible
//! for a data-exchange slot. Each sensor only talks to its radio
//! neighbors; no coordinator exists.
//!
//! ```text
//! cargo run --release --example wireless_scheduling
//! ```

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::distsim::algorithms::coloring::log_star;
use sparsimatch::distsim::algorithms::pipeline::distributed_approx_mcm;
use sparsimatch::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    for n in [500usize, 2_000, 8_000] {
        let field = unit_disk(UnitDiskConfig::with_expected_degree(n, 1.0, 16.0), &mut rng);
        let params = SparsifierParams::with_delta(5, 0.5, 8);
        let out = distributed_approx_mcm(&field, &params, 0xBEEF + n as u64);
        assert!(out.matching.is_valid_for(&field));
        println!(
            "n = {:>5}: paired {:>4} sensor pairs in {:>4} rounds \
             (log* n = {}), {} messages, {} bits on air",
            n,
            out.matching.len(),
            out.metrics.rounds,
            log_star(n),
            out.metrics.messages,
            out.metrics.bits,
        );
    }
    println!("\nRounds stay flat while n grows 16x: the pipeline is local.");
}
