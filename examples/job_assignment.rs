//! Session pairing on a line graph: the paper's flagship β ≤ 2 family.
//!
//! Scenario: a conference has talks, each given by two co-speakers
//! (vertices = speakers, edges = talks). The organizers want to pair
//! talks *that share a speaker* into back-to-back blocks, so the shared
//! speaker only sets up once — a maximum matching in the **line graph**
//! of the speaker graph. Line graphs have neighborhood independence ≤ 2,
//! so the sparsifier pipeline computes a near-maximum pairing while
//! probing only a fraction of the (dense) compatibility graph — a
//! fraction that shrinks as the schedule gets denser.
//!
//! ```text
//! cargo run --release --example job_assignment
//! ```

use rand::{rngs::StdRng, SeedableRng};
use sparsimatch::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 300 speakers, each pair co-authoring with probability 0.5:
    // ~22 000 talks; the talk-compatibility line graph has millions of
    // edges (each talk conflicts with every other talk of each speaker).
    let speakers = gnp(300, 0.5, &mut rng);
    let talks = line_graph(&speakers);
    println!(
        "speakers: {}, talks: {}, talk-compatibility edges: {}",
        speakers.num_vertices(),
        speakers.num_edges(),
        talks.num_edges()
    );

    let params = SparsifierParams::practical(2, 0.4);
    let result = approx_mcm_via_sparsifier(&talks, &params, 7, 2).unwrap();
    println!(
        "paired {} talk blocks, probing {} adjacency entries ({}% of the compatibility graph)",
        result.matching.len(),
        result.probes.total(),
        100 * result.probes.total() as usize / talks.num_edges().max(1)
    );

    // Show a few concrete blocks: each matched pair of talks shares a
    // speaker by construction.
    let mut shown = 0;
    for (a, b) in result.matching.pairs() {
        let (a1, a2) = speakers.edge_endpoints(sparsimatch::graph::ids::EdgeId(a.0));
        let (b1, b2) = speakers.edge_endpoints(sparsimatch::graph::ids::EdgeId(b.0));
        let shared = [a1, a2]
            .iter()
            .find(|s| **s == b1 || **s == b2)
            .copied()
            .expect("matched talks share a speaker");
        if shown < 5 {
            println!("  block: talk({a1},{a2}) + talk({b1},{b2})  — shared speaker {shared}");
            shown += 1;
        }
    }

    let exact = maximum_matching(&talks).len();
    println!(
        "exact best pairing: {} -> ratio {:.4} (target <= 1.4)",
        exact,
        exact as f64 / result.matching.len().max(1) as f64
    );
    assert!(exact as f64 <= 1.4 * result.matching.len() as f64);
    assert!(
        result.probes.total() < talks.num_edges() as u64,
        "probes must stay below the compatibility-graph size"
    );
}
